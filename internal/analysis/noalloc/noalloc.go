// Package noalloc rejects allocating constructs in functions annotated
// //pgmor:noalloc — the static half of the repo's zero-alloc contract for
// the modal evaluation kernels, the fused stepper, and the metrics hot path
// (the dynamic half is the AllocsPerRun suite; see //pgmor:alloctest).
//
// Flagged constructs: make/new, append that may reallocate (anything but
// x = append(x, ...)), closure literals, slice/map literals, address-of
// composite literals, interface boxing at call sites and assignments,
// string concatenation and string<->[]byte conversions, map writes, go
// statements, calls into allocating stdlib packages (fmt, errors, strings,
// strconv, ...), and calls to same-module functions that transitively
// allocate. Dynamic calls (func values, interface methods) cannot be proven
// allocation-free and are flagged in annotated functions.
//
// Two escape hatches keep the contract honest instead of noisy:
//
//   - constructs inside a return statement are exempt: error-formatting on
//     the way out runs at most once per call and never in the steady state;
//   - a //pgmor:alloc <reason> line directive acknowledges a deliberate
//     cold-path allocation (lazy scratch growth, LU fallback for non-modal
//     blocks) where it happens. Markers require a reason, and stale markers
//     — ones no longer covering any allocating construct — are themselves
//     findings, so suppressions cannot outlive the code they excuse.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "noalloc",
	Doc:        "//pgmor:noalloc functions must not contain allocating constructs",
	ModuleWide: true,
	Run:        run,
}

// allocPackages is the stdlib denylist: calls into these packages allocate
// (or exist to build strings/errors) and are flagged outright. Everything
// else out-of-module is trusted — the annotated kernels call only
// sync/atomic and math-shaped helpers there.
var allocPackages = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "strconv": true,
	"sort": true, "bytes": true, "bufio": true, "io": true, "os": true,
	"log": true, "log/slog": true, "regexp": true, "reflect": true,
	"context": true, "encoding/json": true, "encoding/gob": true,
	"net/http": true,
}

// site is one allocating construct.
type site struct {
	pos  token.Pos
	what string
}

// callEdge is a static call to a same-module function.
type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

// funcFacts is everything collected from one function body.
type funcFacts struct {
	name      string
	annotated bool
	sites     []site     // unmarked, unexempt allocating constructs
	calls     []callEdge // unmarked static same-module calls
	dynamics  []site     // dynamic calls; flagged only when annotated
}

// reason explains why a function allocates, as a chain for call-site
// diagnostics.
type reason struct {
	fn   *types.Func // nil for a direct construct
	site site
	next *reason
}

func run(pass *analysis.Pass) error {
	m := pass.Module

	facts := make(map[*types.Func]*funcFacts)
	type staleMarker struct {
		pos token.Pos
		arg string
	}
	var stale []staleMarker

	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			markers := analysis.CollectLineDirectives(m.Fset, file, "alloc")
			used := make(map[int]bool)
			markerPos := markerPositions(m.Fset, file)

			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				_, annotated := analysis.Directive(fd.Doc, "noalloc")
				if fd.Body == nil {
					// Assembly-backed stubs: the body policy lives in the
					// asmpolicy analyzer.
					if annotated {
						facts[obj] = &funcFacts{name: obj.FullName(), annotated: true}
					}
					continue
				}
				c := &collector{
					pass:       pass,
					pkg:        pkg,
					markers:    markers,
					used:       used,
					facts:      &funcFacts{name: obj.FullName(), annotated: annotated},
					selfAppend: make(map[*ast.CallExpr]bool),
				}
				c.findSelfAppends(fd.Body)
				c.visit(fd.Body, false)
				facts[obj] = c.facts
			}

			for line, pos := range markerPos {
				arg, _ := markers.At(m.Fset, pos)
				if arg == "" {
					pass.Reportf(pos, "pgmor:alloc marker needs a reason (//pgmor:alloc <why this cold-path allocation is deliberate>)")
					continue
				}
				if !used[line] && !used[line+1] {
					stale = append(stale, staleMarker{pos, arg})
				}
			}
		}
	}

	// Resolve transitive allocation bottom-up with memoization; annotated
	// functions count as clean at call sites (their own findings are
	// reported directly, not repeated at every caller).
	memo := make(map[*types.Func]*reason)
	visiting := make(map[*types.Func]bool)
	var allocates func(fn *types.Func) *reason
	allocates = func(fn *types.Func) *reason {
		f, ok := facts[fn]
		if !ok || f.annotated {
			return nil
		}
		if r, done := memo[fn]; done {
			return r
		}
		if visiting[fn] {
			return nil // recursion itself does not allocate
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		var r *reason
		if len(f.sites) > 0 {
			r = &reason{site: f.sites[0]}
		} else {
			for _, e := range f.calls {
				if sub := allocates(e.callee); sub != nil {
					r = &reason{fn: e.callee, site: site{pos: e.pos}, next: sub}
					break
				}
			}
		}
		memo[fn] = r
		return r
	}

	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				f := facts[obj]
				if f == nil || !f.annotated {
					continue
				}
				for _, s := range f.sites {
					pass.Reportf(s.pos, "noalloc: %s in //pgmor:noalloc function %s", s.what, fd.Name.Name)
				}
				for _, d := range f.dynamics {
					pass.Reportf(d.pos, "noalloc: %s in //pgmor:noalloc function %s", d.what, fd.Name.Name)
				}
				for _, e := range f.calls {
					if r := allocates(e.callee); r != nil {
						pass.Reportf(e.pos, "noalloc: call to %s allocates (%s) in //pgmor:noalloc function %s",
							shortName(e.callee), chain(m.Fset, r), fd.Name.Name)
					}
				}
			}
		}
	}

	for _, s := range stale {
		pass.Reportf(s.pos, "stale pgmor:alloc marker (%q): no allocating construct on this or the next line", s.arg)
	}
	return nil
}

// chain renders why a callee allocates, following at most three links.
func chain(fset *token.FileSet, r *reason) string {
	var parts []string
	for depth := 0; r != nil && depth < 4; depth++ {
		if r.fn != nil {
			parts = append(parts, shortName(r.fn))
			r = r.next
			continue
		}
		posn := fset.Position(r.site.pos)
		parts = append(parts, fmt.Sprintf("%s at %s:%d", r.site.what, shortPath(posn.Filename), posn.Line))
		break
	}
	if len(parts) == 0 {
		return "transitively"
	}
	return strings.Join(parts, " via ")
}

func shortName(fn *types.Func) string {
	name := fn.FullName()
	if p := fn.Pkg(); p != nil {
		name = strings.Replace(name, p.Path(), p.Name(), 1)
	}
	return name
}

func shortPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// markerPositions maps each pgmor:alloc comment line to its position.
func markerPositions(fset *token.FileSet, f *ast.File) map[int]token.Pos {
	out := make(map[int]token.Pos)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//pgmor:alloc ") || c.Text == "//pgmor:alloc" {
				out[fset.Position(c.Pos()).Line] = c.Pos()
			}
		}
	}
	return out
}

// collector walks one function body.
type collector struct {
	pass    *analysis.Pass
	pkg     *analysis.Package
	markers *analysis.LineDirectives
	used    map[int]bool // marker lines that suppressed something
	facts   *funcFacts

	selfAppend map[*ast.CallExpr]bool
}

// findSelfAppends records x = append(x, ...) calls — the one append shape
// that reuses its backing array in the steady state.
func (c *collector) findSelfAppends(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !c.isBuiltin(call, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(call.Args[0]) == types.ExprString(as.Lhs[i]) {
				c.selfAppend[call] = true
			}
		}
		return true
	})
}

func (c *collector) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// record notes an allocating construct unless a pgmor:alloc marker covers
// its line or the construct sits in an exempt (return-statement) context.
func (c *collector) record(pos token.Pos, exempt bool, what string) {
	if exempt {
		return
	}
	if _, marked := c.markers.At(c.pass.Fset, pos); marked {
		c.used[c.pass.Fset.Position(pos).Line] = true
		return
	}
	c.facts.sites = append(c.facts.sites, site{pos, what})
}

// marked reports (and consumes) a pgmor:alloc marker on the position's line.
func (c *collector) marked(pos token.Pos) bool {
	if _, ok := c.markers.At(c.pass.Fset, pos); ok {
		c.used[c.pass.Fset.Position(pos).Line] = true
		return true
	}
	return false
}

// visit walks the syntax tree; exempt is true inside return statements.
func (c *collector) visit(n ast.Node, exempt bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.visit(r, true)
		}
		return

	case *ast.FuncLit:
		c.record(n.Pos(), exempt, "closure literal allocates")
		return // the closure body runs under its own allocation budget

	case *ast.GoStmt:
		c.record(n.Pos(), exempt, "go statement allocates a goroutine")
		c.visit(n.Call, exempt)
		return

	case *ast.CompositeLit:
		switch c.typeOf(n).Underlying().(type) {
		case *types.Slice:
			c.record(n.Pos(), exempt, "slice literal allocates")
		case *types.Map:
			c.record(n.Pos(), exempt, "map literal allocates")
		}
		for _, el := range n.Elts {
			c.visit(el, exempt)
		}
		return

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.record(n.Pos(), exempt, "address of composite literal allocates")
				for _, el := range cl.Elts {
					c.visit(el, exempt)
				}
				return
			}
		}
		c.visit(n.X, exempt)
		return

	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if b, ok := c.typeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				c.record(n.Pos(), exempt, "string concatenation allocates")
			}
		}
		c.visit(n.X, exempt)
		c.visit(n.Y, exempt)
		return

	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if _, isMap := c.typeOf(ix.X).Underlying().(*types.Map); isMap {
					c.record(lhs.Pos(), exempt, "map write may allocate")
				}
			}
		}
		// Boxing through assignment: a concrete value stored into an
		// interface-typed variable.
		if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				c.checkBoxing(n.Rhs[i], c.typeOf(n.Lhs[i]), exempt)
			}
		}
		for _, e := range n.Lhs {
			c.visit(e, exempt)
		}
		for _, e := range n.Rhs {
			c.visit(e, exempt)
		}
		return

	case *ast.IncDecStmt:
		if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
			if _, isMap := c.typeOf(ix.X).Underlying().(*types.Map); isMap {
				c.record(n.Pos(), exempt, "map write may allocate")
			}
		}
		c.visit(n.X, exempt)
		return

	case *ast.ValueSpec:
		if n.Type != nil {
			t := c.pkg.Info.Types[n.Type].Type
			for _, v := range n.Values {
				c.checkBoxing(v, t, exempt)
			}
		}
		for _, v := range n.Values {
			c.visit(v, exempt)
		}
		return

	case *ast.CallExpr:
		c.call(n, exempt)
		return
	}

	// Generic traversal for everything else.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		c.visit(child, exempt)
		return false
	})
}

// call classifies one call expression.
func (c *collector) call(call *ast.CallExpr, exempt bool) {
	fun := ast.Unparen(call.Fun)
	info := c.pkg.Info

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			src := c.typeOf(call.Args[0])
			switch {
			case isString(target) && isByteOrRuneSlice(src),
				isByteOrRuneSlice(target) && isString(src):
				c.record(call.Pos(), exempt, "string conversion allocates")
			case types.IsInterface(target) && !types.IsInterface(src) && !isUntypedNil(src):
				c.record(call.Pos(), exempt, "conversion to interface boxes the value")
			}
			c.visit(call.Args[0], exempt)
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.record(call.Pos(), exempt, "make allocates")
			case "new":
				c.record(call.Pos(), exempt, "new allocates")
			case "append":
				if !c.selfAppend[call] {
					c.record(call.Pos(), exempt, "append without reuse (not x = append(x, ...)) may allocate")
				}
			case "panic":
				// Panics are exceptional exits; their arguments are exempt
				// like return values.
				exempt = true
			}
			for _, a := range call.Args {
				c.visit(a, exempt)
			}
			return
		}
	}

	callee := c.staticCallee(call)
	switch {
	case callee == nil:
		if !c.marked(call.Pos()) {
			c.facts.dynamics = append(c.facts.dynamics,
				site{call.Pos(), "dynamic call cannot be proven allocation-free"})
		}
	case callee.Pkg() == nil:
		// Universe-scope methods (error.Error): dynamic dispatch.
		if !c.marked(call.Pos()) {
			c.facts.dynamics = append(c.facts.dynamics,
				site{call.Pos(), "interface method call cannot be proven allocation-free"})
		}
	case c.pass.Module.ByPath[callee.Pkg().Path()] != nil:
		if !c.marked(call.Pos()) {
			c.facts.calls = append(c.facts.calls, callEdge{call.Pos(), callee})
		}
	case allocPackages[callee.Pkg().Path()]:
		c.record(call.Pos(), exempt, fmt.Sprintf("call to %s allocates", shortName(callee)))
	}

	// Interface boxing of arguments.
	if sig, ok := info.Types[call.Fun].Type.(*types.Signature); ok && callee != nil &&
		!allocPackages[pkgPath(callee)] && call.Ellipsis == token.NoPos {
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case i < sig.Params().Len()-1 || (i < sig.Params().Len() && !sig.Variadic()):
				pt = sig.Params().At(i).Type()
			case sig.Variadic():
				pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
			if pt != nil && types.IsInterface(pt) && !types.IsInterface(c.typeOf(arg)) && !isUntypedNil(c.typeOf(arg)) {
				c.record(arg.Pos(), exempt, "argument boxed into interface parameter")
			}
		}
	}

	for _, a := range call.Args {
		c.visit(a, exempt)
	}
	c.visit(call.Fun, exempt)
}

// staticCallee resolves the called function when the call target is known at
// compile time; nil means dynamic (func value, interface method).
func (c *collector) staticCallee(call *ast.CallExpr) *types.Func {
	info := c.pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // func-typed field
			}
			if types.IsInterface(sel.Recv().Underlying()) {
				return nil // interface dispatch
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified function.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// checkBoxing flags a concrete value flowing into an interface-typed slot.
func (c *collector) checkBoxing(val ast.Expr, target types.Type, exempt bool) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	src := c.typeOf(val)
	if src == nil || types.IsInterface(src) || isUntypedNil(src) {
		return
	}
	c.record(val.Pos(), exempt, "value boxed into interface assignment")
}

func (c *collector) typeOf(e ast.Expr) types.Type {
	if t := c.pkg.Info.Types[e].Type; t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func pkgPath(fn *types.Func) string {
	if p := fn.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
