// Fixture assembly: one clean kernel plus one violation per policy rule.

// Clean: allowlisted opcodes only, VZEROUPPER before RET.
TEXT ·goodKernel(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	VBROADCASTSD a+24(FP), Y0
	VMOVUPD (SI), Y1
	VMULPD Y0, Y1, Y1
	VMOVUPD Y1, (SI)
	VZEROUPPER
	RET

TEXT ·fmaKernel(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	VBROADCASTSD a+24(FP), Y0
	VMOVUPD (SI), Y1
	VFMADD231PD Y0, Y1, Y1 // want "FMA opcode VFMADD231PD is forbidden"
	VMOVUPD Y1, (SI)
	VZEROUPPER
	RET

TEXT ·badOpKernel(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	VBROADCASTSD a+24(FP), Y0
	VMOVUPD (SI), Y1
	VDIVPD Y0, Y1, Y1 // want "VDIVPD is not in the policy allowlist"
	VMOVUPD Y1, (SI)
	VZEROUPPER
	RET

TEXT ·noVzero(SB), NOSPLIT, $0-24
	MOVQ x_base+0(FP), SI
	VMOVUPD (SI), Y1
	VADDPD Y1, Y1, Y1
	VMOVUPD Y1, (SI)
	RET // want "without a preceding VZEROUPPER"

TEXT ·wrongSize(SB), NOSPLIT, $0-24 // want "argument size is 24 bytes; Go declaration requires 32"
	RET
