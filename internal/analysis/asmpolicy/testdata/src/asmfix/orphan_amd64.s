// A second file, so stub-pairing diagnostics must point at the file the
// TEXT block actually lives in.
TEXT ·orphanText(SB), NOSPLIT, $0-8 // want "has no bodyless Go declaration"
	RET
