// Package asmfix pairs Go stubs with fixture assembly carrying one
// violation per policy rule, plus one clean kernel that must pass.
package asmfix

// goodKernel scales x by a with allowlisted AVX opcodes only.
func goodKernel(x []float64, a float64)

// fmaKernel smuggles in a fused multiply-add.
func fmaKernel(x []float64, a float64)

// badOpKernel uses a floating-point opcode outside the allowlist.
func badOpKernel(x []float64, a float64)

// noVzero touches Y registers but returns without VZEROUPPER.
func noVzero(x []float64)

// wrongSize declares 32 bytes of ABI0 arguments; its TEXT says 24.
func wrongSize(x []float64, a float64)

// orphanStub has no TEXT block at all.
func orphanStub(x []float64) // want "has no TEXT block"
