// Package asmpolicy audits the hand-written amd64 assembly kernels against
// the repo's portability and correctness policy:
//
//   - Floating-point opcodes are restricted to an explicit allowlist of
//     AVX/AVX2 moves, broadcasts, and mul/add/sub (vector and scalar
//     forms) plus VZEROUPPER. Any FMA-family opcode (VFMADD*, VFMSUB*,
//     VFNMADD*, ...) is an error even though it would be faster: fused
//     multiply-add changes rounding (one rounding step instead of two), and
//     the project's acceptance tests require the SIMD path to be bit-exact
//     with the pure-Go reference kernels.
//
//   - Every TEXT block that touches a Y register must execute VZEROUPPER
//     before each RET, avoiding the AVX->SSE transition penalty in callers.
//
//   - TEXT argument sizes are cross-checked against the Go stub
//     declarations (ABI0 layout), and stubs and TEXT blocks must pair up
//     one-to-one, so the assembly cannot silently drift from the Go
//     signatures it implements.
package asmpolicy

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "asmpolicy",
	Doc:  "amd64 assembly: FP opcode allowlist (no FMA), VZEROUPPER before RET, TEXT sizes match Go stubs",
	Run:  run,
}

// fpAllowlist is the complete set of floating-point opcodes the kernels may
// use. Everything else that smells floating-point is rejected.
var fpAllowlist = map[string]bool{
	"VMOVUPD": true, "VMOVSD": true, "VBROADCASTSD": true,
	"VMULPD": true, "VADDPD": true, "VSUBPD": true,
	"VMULSD": true, "VADDSD": true, "VSUBSD": true,
	"VZEROUPPER": true,
}

var (
	fmaRE   = regexp.MustCompile(`^VF(N)?M(ADD|SUB|ADDSUB|SUBADD)`)
	textRE  = regexp.MustCompile(`^TEXT\s+·([A-Za-z_][A-Za-z0-9_]*)\(SB\)\s*(?:,\s*[A-Z0-9|$]+)?\s*,\s*\$(-?\d+)(?:-(\d+))?`)
	yRegRE  = regexp.MustCompile(`\bY(1[0-5]|[0-9])\b`)
	labelRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*:`)
)

type inst struct {
	line     int
	mnemonic string
	operands string
}

type textBlock struct {
	name    string
	file    string
	line    int
	argSize int64
	hasArgs bool
	insts   []inst
	usesY   bool
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	if pkg == nil || !pkg.Spec.InModule {
		return nil
	}
	var asmFiles []string
	for _, f := range pkg.Spec.SFiles {
		if strings.HasSuffix(f, "_amd64.s") {
			asmFiles = append(asmFiles, f)
		}
	}
	if len(asmFiles) == 0 {
		return nil
	}

	blocks := make(map[string]*textBlock)
	for _, fname := range asmFiles {
		content, err := os.ReadFile(fname)
		if err != nil {
			return err
		}
		for _, b := range parseFile(fname, string(content), pass) {
			blocks[b.name] = b
			checkBlock(pass, fname, b)
		}
	}

	// Cross-check against the Go stub declarations: argument sizes, and
	// one-to-one pairing in both directions.
	stubs := make(map[string]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body == nil && fd.Recv == nil {
				stubs[fd.Name.Name] = fd
			}
		}
	}
	sizes := types.SizesFor("gc", "amd64")
	for name, b := range blocks {
		stub, ok := stubs[name]
		if !ok {
			pass.ReportAtf(token.Position{Filename: b.file, Line: b.line},
				"asmpolicy: TEXT ·%s has no bodyless Go declaration in package %s", name, pkg.Types.Name())
			continue
		}
		fn, _ := pkg.Info.Defs[stub.Name].(*types.Func)
		if fn == nil {
			continue
		}
		want := abi0ArgSize(fn.Type().(*types.Signature), sizes)
		if !b.hasArgs {
			pass.ReportAtf(token.Position{Filename: b.file, Line: b.line},
				"asmpolicy: TEXT ·%s declares no argument size; want $frame-%d", name, want)
		} else if b.argSize != want {
			pass.ReportAtf(token.Position{Filename: b.file, Line: b.line},
				"asmpolicy: TEXT ·%s argument size is %d bytes; Go declaration requires %d", name, b.argSize, want)
		}
	}
	for name, fd := range stubs {
		if _, ok := blocks[name]; !ok {
			pass.Reportf(fd.Pos(),
				"asmpolicy: bodyless func %s has no TEXT block in the package's amd64 assembly", name)
		}
	}
	return nil
}

// parseFile splits one assembly file into TEXT blocks. Malformed TEXT lines
// are reported and skipped.
func parseFile(fname, content string, pass *analysis.Pass) []*textBlock {
	var out []*textBlock
	var cur *textBlock
	for i, raw := range strings.Split(content, "\n") {
		lineNo := i + 1
		line := raw
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "TEXT") {
			m := textRE.FindStringSubmatch(line)
			if m == nil {
				pass.ReportAtf(token.Position{Filename: fname, Line: lineNo},
					"asmpolicy: unparseable TEXT directive %q", line)
				cur = nil
				continue
			}
			cur = &textBlock{name: m[1], file: fname, line: lineNo}
			if m[3] != "" {
				cur.argSize, _ = strconv.ParseInt(m[3], 10, 64)
				cur.hasArgs = true
			}
			out = append(out, cur)
			continue
		}
		if labelRE.MatchString(line) {
			line = strings.TrimSpace(line[strings.IndexByte(line, ':')+1:])
			if line == "" {
				continue
			}
		}
		if cur == nil {
			continue
		}
		if strings.HasPrefix(line, "GLOBL") || strings.HasPrefix(line, "DATA") || strings.HasPrefix(line, "PCALIGN") {
			continue
		}
		mnemonic, operands, _ := strings.Cut(line, " ")
		mnemonic = strings.TrimSpace(mnemonic)
		operands = strings.TrimSpace(operands)
		cur.insts = append(cur.insts, inst{lineNo, mnemonic, operands})
		if yRegRE.MatchString(operands) {
			cur.usesY = true
		}
	}
	return out
}

// checkBlock applies the opcode and VZEROUPPER rules to one TEXT block.
func checkBlock(pass *analysis.Pass, fname string, b *textBlock) {
	sawVzeroupper := false
	for _, in := range b.insts {
		if fmaRE.MatchString(in.mnemonic) {
			pass.ReportAtf(token.Position{Filename: fname, Line: in.line},
				"asmpolicy: FMA opcode %s is forbidden: fused rounding breaks bit-exactness with the reference kernels", in.mnemonic)
			continue
		}
		if isFPMnemonic(in.mnemonic) && !fpAllowlist[in.mnemonic] {
			pass.ReportAtf(token.Position{Filename: fname, Line: in.line},
				"asmpolicy: floating-point opcode %s is not in the policy allowlist", in.mnemonic)
		}
		switch in.mnemonic {
		case "VZEROUPPER":
			sawVzeroupper = true
		case "RET":
			if b.usesY && !sawVzeroupper {
				pass.ReportAtf(token.Position{Filename: fname, Line: in.line},
					"asmpolicy: RET in Y-register-using TEXT ·%s without a preceding VZEROUPPER", b.name)
			}
			sawVzeroupper = false
		}
	}
}

// isFPMnemonic reports whether a mnemonic is floating-point-shaped: any VEX
// opcode, or an SSE-style opcode with a scalar/packed float suffix.
func isFPMnemonic(m string) bool {
	if strings.HasPrefix(m, "V") {
		return true
	}
	for _, suf := range []string{"SD", "PD", "SS", "PS"} {
		if strings.HasSuffix(m, suf) && len(m) > len(suf) {
			return true
		}
	}
	return false
}

// abi0ArgSize computes the stack bytes of arguments plus results under ABI0:
// parameters packed with natural alignment, results starting at an 8-byte
// boundary, total rounded up to 8.
func abi0ArgSize(sig *types.Signature, sizes types.Sizes) int64 {
	var off int64
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		off = align(off, sizes.Alignof(t))
		off += sizes.Sizeof(t)
	}
	if sig.Results().Len() > 0 {
		off = align(off, 8)
		for i := 0; i < sig.Results().Len(); i++ {
			t := sig.Results().At(i).Type()
			off = align(off, sizes.Alignof(t))
			off += sizes.Sizeof(t)
		}
	}
	return align(off, 8)
}

func align(x, a int64) int64 {
	return (x + a - 1) &^ (a - 1)
}
