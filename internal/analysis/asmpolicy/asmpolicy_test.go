package asmpolicy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/asmpolicy"
)

func TestAsmPolicy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), asmpolicy.Analyzer, "asmfix")
}
