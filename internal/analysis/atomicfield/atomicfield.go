// Package atomicfield enforces the repo's atomic-access discipline: a struct
// field that is accessed atomically anywhere — either through sync/atomic
// calls on its address or by being declared as one of the atomic wrapper
// types (atomic.Int64, atomic.Uint64, ...) — must never be read or written
// plainly anywhere else in the module. Mixing atomic and plain access is a
// data race even when each side looks locally correct, and it is exactly the
// kind of bug that survives -race runs that never hit the interleaving.
//
// For raw-atomic fields (those passed as &x.f to sync/atomic functions) every
// other appearance of the field is a finding. For wrapper-typed fields the
// atomicity lives in the type's methods, so method calls and taking the
// field's address are fine; what gets flagged is copying the wrapper by value
// or overwriting the whole field, both of which smuggle a plain 8-byte access
// past the API.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "atomicfield",
	Doc:        "fields accessed via sync/atomic must never be accessed plainly",
	ModuleWide: true,
	Run:        run,
}

// wrapperTypes are the sync/atomic value types whose methods carry the
// atomicity. Copying one by value is always a bug.
var wrapperTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Pointer": true, "Value": true,
}

func run(pass *analysis.Pass) error {
	m := pass.Module

	// Phase 1: find every field that participates in atomic access.
	raw := make(map[*types.Var]bool)     // &x.f passed to a sync/atomic call
	wrapper := make(map[*types.Var]bool) // field declared with an atomic wrapper type

	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, f := range n.Fields.List {
						for _, name := range f.Names {
							fv, ok := pkg.Info.Defs[name].(*types.Var)
							if ok && isWrapperType(fv.Type()) {
								wrapper[fv] = true
							}
						}
					}
				case *ast.CallExpr:
					if !isAtomicCall(pkg.Info, n) {
						return true
					}
					for _, arg := range n.Args {
						if fv := addressedField(pkg.Info, arg); fv != nil {
							raw[fv] = true
						}
					}
				}
				return true
			})
		}
	}

	if len(raw) == 0 && len(wrapper) == 0 {
		return nil
	}

	// Phase 2: flag plain accesses.
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			parents := parentMap(file)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					fv := selectedField(pkg.Info, n)
					if fv == nil {
						return true
					}
					switch {
					case raw[fv]:
						if !isAtomicArg(pkg.Info, parents, n) {
							pass.Reportf(n.Sel.Pos(),
								"atomicfield: field %s is accessed with sync/atomic elsewhere; plain access is a data race",
								fieldName(fv))
						}
					case wrapper[fv]:
						if kind := plainWrapperUse(parents, n); kind != "" {
							pass.Reportf(n.Sel.Pos(),
								"atomicfield: %s of atomic-typed field %s bypasses its atomicity",
								kind, fieldName(fv))
						}
					}
				case *ast.KeyValueExpr:
					// Keyed struct-literal initialization writes the field
					// without going through the atomic API.
					key, ok := n.Key.(*ast.Ident)
					if !ok {
						return true
					}
					fv, ok := pkg.Info.Uses[key].(*types.Var)
					if !ok || !fv.IsField() {
						return true
					}
					if raw[fv] {
						pass.Reportf(key.Pos(),
							"atomicfield: field %s is accessed with sync/atomic elsewhere; composite-literal write is a plain store",
							fieldName(fv))
					} else if wrapper[fv] {
						pass.Reportf(key.Pos(),
							"atomicfield: composite-literal write of atomic-typed field %s bypasses its atomicity",
							fieldName(fv))
					}
				}
				return true
			})
		}
	}
	return nil
}

// isWrapperType reports whether t is one of the sync/atomic value types.
func isWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && wrapperTypes[obj.Name()]
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedField returns the struct field f when arg has the shape &x.f.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(info, sel)
}

// selectedField resolves sel to a struct field, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if fv, ok := s.Obj().(*types.Var); ok {
			return fv
		}
	}
	return nil
}

// isAtomicArg reports whether sel appears as &x.f directly inside a
// sync/atomic call's argument list.
func isAtomicArg(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	ue, ok := skipParens(parents, sel).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return false
	}
	call, ok := skipParens(parents, ue).(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}

// plainWrapperUse classifies a use of a wrapper-typed field selector that
// bypasses its methods; "" means the use is fine (method receiver or
// address-of).
func plainWrapperUse(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) string {
	switch p := skipParens(parents, sel).(type) {
	case *ast.SelectorExpr:
		if p.X == sel || isParenOf(p.X, sel) {
			return "" // x.f.Load() — the field is a method receiver
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return "" // &x.f — passing the pointer keeps atomicity
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				return "whole-field write"
			}
		}
	}
	return "value copy"
}

func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = parents[pe]
	}
}

func isParenOf(outer ast.Expr, inner ast.Expr) bool {
	return ast.Unparen(outer) == inner
}

// parentMap records each node's parent for context-sensitive checks.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func fieldName(fv *types.Var) string {
	if fv.Pkg() != nil {
		return fv.Pkg().Name() + "." + fv.Name()
	}
	return fv.Name()
}
