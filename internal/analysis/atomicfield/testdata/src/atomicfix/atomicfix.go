// Package atomicfix mixes legal and illegal accesses to fields that are
// atomic by convention (raw int64 + sync/atomic) and by type (atomic.Int64).
package atomicfix

import "sync/atomic"

type counters struct {
	hits  int64 // raw field: accessed via sync/atomic in bump
	gauge atomic.Int64
	name  string // plain field, never atomic: untracked
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1) // canonical raw access: no diagnostic
	c.gauge.Add(1)              // wrapper method call: no diagnostic
	c.name = "ok"
}

func handoff(c *counters) *atomic.Int64 {
	return &c.gauge // address-of keeps atomicity: no diagnostic
}

func race(c *counters) int64 {
	c.hits++        // want "plain access is a data race"
	return c.hits + // want "plain access is a data race"
		c.gauge.Load()
}

func clobber(dst, src *counters) {
	dst.gauge = // want "whole-field write of atomic-typed field"
		src.gauge // want "value copy of atomic-typed field"
}

func build(seed int64) counters {
	return counters{
		hits: seed, // want "composite-literal write is a plain store"
		name: "fresh",
	}
}

func buildWrapper(g atomic.Int64) counters {
	return counters{
		gauge: g, // want "composite-literal write of atomic-typed field"
	}
}
