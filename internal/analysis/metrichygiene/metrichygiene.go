// Package metrichygiene keeps the metrics surface coherent across its three
// sources of truth: the registration calls in code, the README metric
// tables, and the CI promcheck require lists. Every metric registered in an
// enforced package must be a compile-time-constant, correctly prefixed,
// snake_case, globally unique name — and must appear in the README table and
// the require list for its prefix. Drift in either direction (a registered
// metric nobody documented, or a documented metric nobody registers) is an
// error, so the dashboard docs and the CI gate can never silently rot.
//
// Scope: internal/serve registers pgserve_* families, internal/router
// registers pgrouter_* families. internal/bench's bench_* metrics are a
// deliberately unexported harness surface and are not enforced.
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Config parameterizes the analyzer so tests can point it at fixture
// packages and synthetic docs.
type Config struct {
	// PrefixFor maps a package-path substring to the metric prefix packages
	// matching it must use. First match in PrefixOrder wins.
	PrefixFor   map[string]string
	PrefixOrder []string

	// ReadmePath, relative to the module root, is the markdown file whose
	// metric tables are cross-checked. Empty disables the README check.
	ReadmePath string

	// RequireFiles maps each metric prefix to the CI require list (one
	// family per line) that must stay in sync. Empty disables the check.
	RequireFiles map[string]string
}

// DefaultConfig is the repo's real layout.
var DefaultConfig = Config{
	PrefixFor: map[string]string{
		"internal/serve":  "pgserve_",
		"internal/router": "pgrouter_",
	},
	PrefixOrder: []string{"internal/serve", "internal/router"},
	ReadmePath:  "README.md",
	RequireFiles: map[string]string{
		"pgserve_":  ".github/promcheck-pgserve.require",
		"pgrouter_": ".github/promcheck-pgrouter.require",
	},
}

var Analyzer = New(DefaultConfig)

// New builds a metrichygiene analyzer over cfg.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:       "metrichygiene",
		Doc:        "metric names are prefixed snake_case, unique, and synced with README and CI require lists",
		ModuleWide: true,
		Run:        func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// registerMethods are the obs.Registry calls that create a metric family.
var registerMethods = map[string]bool{
	"Counter": true, "CounterVec": true, "CounterFunc": true,
	"Gauge": true, "GaugeVec": true, "GaugeFunc": true,
	"Histogram": true, "HistogramVec": true,
}

var snakeRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

type registration struct {
	name   string
	prefix string
	pos    token.Pos
}

func run(pass *analysis.Pass, cfg Config) error {
	m := pass.Module

	var regs []registration
	seen := make(map[string]token.Pos)

	for _, pkg := range m.Packages {
		prefix := prefixFor(cfg, pkg.Path())
		if prefix == "" {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method := registryMethod(pkg.Info, call)
				if method == "" || len(call.Args) == 0 {
					return true
				}
				name, constOK := constantString(pkg.Info, call.Args[0])
				if !constOK {
					pass.Reportf(call.Args[0].Pos(),
						"metrichygiene: metric name must be a compile-time constant string")
					return true
				}
				if !strings.HasPrefix(name, prefix) {
					pass.Reportf(call.Args[0].Pos(),
						"metrichygiene: metric %q must carry the %q prefix (package %s)", name, prefix, pkg.Path())
				}
				if !snakeRE.MatchString(name) {
					pass.Reportf(call.Args[0].Pos(),
						"metrichygiene: metric %q is not snake_case ([a-z][a-z0-9_]*)", name)
				}
				if prev, dup := seen[name]; dup {
					pass.Reportf(call.Args[0].Pos(),
						"metrichygiene: metric %q already registered at %s", name, pass.Fset.Position(prev))
				} else {
					seen[name] = call.Args[0].Pos()
					regs = append(regs, registration{name, prefix, call.Args[0].Pos()})
				}
				return true
			})
		}
	}

	if m.RootDir == "" {
		return nil // synthetic test module without docs to cross-check
	}
	// The README/require-list sync is a whole-surface property: comparing
	// them against a partial package load would flag every family the load
	// left out. Only run the cross-checks when every enforced package set is
	// present (i.e. a ./... run).
	for _, sub := range cfg.PrefixOrder {
		found := false
		for _, pkg := range m.Packages {
			if strings.Contains(pkg.Path(), sub) {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}

	enforcedPrefixes := make(map[string]bool)
	for _, p := range cfg.PrefixFor {
		enforcedPrefixes[p] = true
	}

	if cfg.ReadmePath != "" {
		if err := checkReadme(pass, cfg, regs, enforcedPrefixes); err != nil {
			return err
		}
	}
	for prefix, reqPath := range cfg.RequireFiles {
		if err := checkRequireFile(pass, prefix, reqPath, regs); err != nil {
			return err
		}
	}
	return nil
}

// checkReadme cross-checks the README metric tables against registrations,
// in both directions.
func checkReadme(pass *analysis.Pass, cfg Config, regs []registration, enforced map[string]bool) error {
	path := filepath.Join(pass.Module.RootDir, cfg.ReadmePath)
	content, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	documented := parseReadmeTables(string(content))

	docNames := make(map[string]int) // full name -> README line
	for _, d := range documented {
		docNames[d.name] = d.line
	}
	registered := make(map[string]bool)
	for _, r := range regs {
		registered[r.name] = true
		if _, ok := docNames[r.name]; !ok {
			pass.Reportf(r.pos,
				"metrichygiene: metric %s is not documented in the %s metrics table", r.name, cfg.ReadmePath)
		}
	}
	for _, d := range documented {
		if !enforced[d.prefix] {
			continue
		}
		if !registered[d.name] {
			pass.ReportAtf(token.Position{Filename: path, Line: d.line},
				"metrichygiene: %s documents metric %s which is not registered anywhere", cfg.ReadmePath, d.name)
		}
	}
	return nil
}

// checkRequireFile cross-checks one promcheck require list against the
// registrations carrying its prefix.
func checkRequireFile(pass *analysis.Pass, prefix, reqPath string, regs []registration) error {
	path := filepath.Join(pass.Module.RootDir, reqPath)
	content, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	required := make(map[string]int) // family -> line
	for i, raw := range strings.Split(string(content), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		required[line] = i + 1
	}
	registered := make(map[string]bool)
	for _, r := range regs {
		if r.prefix != prefix {
			continue
		}
		registered[r.name] = true
		if _, ok := required[r.name]; !ok {
			pass.Reportf(r.pos,
				"metrichygiene: metric %s is missing from the CI require list %s", r.name, reqPath)
		}
	}
	for fam, line := range required {
		if !registered[fam] {
			pass.ReportAtf(token.Position{Filename: path, Line: line},
				"metrichygiene: %s requires metric %s which is not registered anywhere", reqPath, fam)
		}
	}
	return nil
}

type documentedMetric struct {
	name   string // full name including prefix
	prefix string
	line   int // 1-based README line
}

var (
	prefixCtxRE = regexp.MustCompile("prefixed `([a-z][a-z0-9_]*_)`")
	backtickRE  = regexp.MustCompile("`([a-z0-9_{},]+)`")
)

// parseReadmeTables extracts metric short names from markdown table rows.
// Only the first cell of each table row is scanned (labels and meaning cells
// also use backticks), short names are expanded through one level of
// {a,b,c} brace groups, and the prefix comes from the nearest preceding
// "prefixed `pgserve_`"-style line.
func parseReadmeTables(content string) []documentedMetric {
	var out []documentedMetric
	prefix := ""
	for i, line := range strings.Split(content, "\n") {
		if m := prefixCtxRE.FindStringSubmatch(line); m != nil {
			prefix = m[1]
			continue
		}
		// A heading starts a new section: whatever tables follow are not
		// metric tables until another "prefixed `...`" line says so.
		if strings.HasPrefix(line, "#") {
			prefix = ""
			continue
		}
		trimmed := strings.TrimSpace(line)
		if prefix == "" || !strings.HasPrefix(trimmed, "|") {
			continue
		}
		cells := strings.Split(trimmed, "|")
		if len(cells) < 2 {
			continue
		}
		first := cells[1]
		if strings.HasPrefix(strings.TrimSpace(first), "---") {
			continue
		}
		for _, m := range backtickRE.FindAllStringSubmatch(first, -1) {
			for _, short := range expandBraces(m[1]) {
				if short == "" {
					continue
				}
				out = append(out, documentedMetric{prefix + short, prefix, i + 1})
			}
		}
	}
	return out
}

// expandBraces expands {a,b,c} groups: "x_{a,b}_total" -> x_a_total, x_b_total.
func expandBraces(s string) []string {
	open := strings.IndexByte(s, '{')
	if open < 0 {
		return []string{s}
	}
	close := strings.IndexByte(s[open:], '}')
	if close < 0 {
		return []string{s} // unbalanced; treat literally (will fail snake check downstream)
	}
	close += open
	var out []string
	for _, mid := range strings.Split(s[open+1:close], ",") {
		out = append(out, expandBraces(s[:open]+mid+s[close+1:])...)
	}
	return out
}

// registryMethod returns the method name when call is a registration call on
// obs.Registry, else "".
func registryMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return ""
	}
	return sel.Sel.Name
}

// constantString evaluates arg as a compile-time string constant.
func constantString(info *types.Info, arg ast.Expr) (string, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// prefixFor returns the required metric prefix for a package path, or "".
func prefixFor(cfg Config, pkgPath string) string {
	for _, sub := range cfg.PrefixOrder {
		if strings.Contains(pkgPath, sub) {
			return cfg.PrefixFor[sub]
		}
	}
	return ""
}
