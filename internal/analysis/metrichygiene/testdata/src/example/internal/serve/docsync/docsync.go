// Package docsync drives the README/require-list cross-checks: alpha is in
// sync everywhere, beta is undocumented, gamma is unrequired, and the doc
// files carry one orphan each.
package docsync

import "obs"

func register(r *obs.Registry) {
	r.Counter("pgserve_alpha_total", "documented and required")
	r.Counter("pgserve_beta_total", "missing from the README table")
	r.Counter("pgserve_gamma_total", "missing from the require list")
	r.Counter("pgserve_delta_a_total", "documented via brace expansion")
	r.Counter("pgserve_delta_b_total", "documented via brace expansion")
}
