// Package metricsfix exercises the registration-site rules: constant names,
// prefix, snake_case, uniqueness.
package metricsfix

import "obs"

const promoted = "pgserve_promoted_total"

func register(r *obs.Registry, dynamic string) {
	r.Counter("pgserve_requests_total", "ok")           // no diagnostic
	r.Counter(promoted, "constant-folded name is fine") // no diagnostic
	r.Gauge("pgrouter_queue_depth", "wrong prefix")     // want "must carry the .pgserve_. prefix"
	r.Counter("pgserve_BadCase_total", "uppercase")     // want "not snake_case"
	r.Counter("pgserve_requests_total", "dup")          // want "already registered"
	r.Counter(dynamic, "not constant")                  // want "must be a compile-time constant string"
}
