// Package obs is a minimal stand-in for the real metrics registry: the
// analyzer matches registration calls by method name on a type named
// Registry in a package named obs.
package obs

type Registry struct{}

func (r *Registry) Counter(name, help string)                      {}
func (r *Registry) CounterVec(name, help string, labels ...string) {}
func (r *Registry) Gauge(name, help string)                        {}
func (r *Registry) Histogram(name, help string, buckets []float64) {}
