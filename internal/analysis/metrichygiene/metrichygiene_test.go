package metrichygiene_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metrichygiene"
)

var fixtureCfg = metrichygiene.Config{
	PrefixFor:   map[string]string{"example/internal/serve": "pgserve_"},
	PrefixOrder: []string{"example/internal/serve"},
}

func TestRegistrationRules(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), metrichygiene.New(fixtureCfg),
		"obs", "example/internal/serve/metricsfix")
}

// TestDocSync points the analyzer at a synthetic module root whose README
// and require list each drift from the registrations in one direction.
func TestDocSync(t *testing.T) {
	testdata := analysistest.TestData(t)
	m := analysistest.Load(t, testdata, "obs", "example/internal/serve/docsync")
	m.RootDir = filepath.Join(testdata, "root")

	cfg := fixtureCfg
	cfg.ReadmePath = "README.md"
	cfg.RequireFiles = map[string]string{"pgserve_": "pgserve.require"}

	diags, err := analysis.Run(m, []*analysis.Analyzer{metrichygiene.New(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"metric pgserve_beta_total is not documented in the README.md metrics table",
		"README.md documents metric pgserve_ghost_total which is not registered anywhere",
		"metric pgserve_gamma_total is missing from the CI require list pgserve.require",
		"pgserve.require requires metric pgserve_phantom_total which is not registered anywhere",
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q", w)
		}
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s: %s", d.Position(m.Fset), d.Message)
		}
		t.Errorf("got %d diagnostics, want %d", len(diags), len(want))
	}
}
