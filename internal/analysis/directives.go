package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repo's annotation contract rides on //pgmor: directive comments:
//
//	//pgmor:noalloc            (func doc)  function must not allocate
//	//pgmor:alloc <reason>     (line)      acknowledged cold-path allocation
//	//pgmor:detach <reason>    (func doc or line) deliberate context detach
//	//pgmor:alloctest <Name>   (test func doc)    dynamic alloc-check marker
//
// Directive comments follow the Go toolchain convention: no space after //,
// so gofmt leaves them alone and godoc hides them.

// Directive returns the argument of the first //pgmor:<name> directive in
// the comment group, and whether one was present. The argument may be empty.
func Directive(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if a, match := parseDirective(c.Text, name); match {
			return a, true
		}
	}
	return "", false
}

func parseDirective(comment, name string) (arg string, ok bool) {
	text, found := strings.CutPrefix(comment, "//pgmor:")
	if !found {
		return "", false
	}
	text = strings.TrimSuffix(text, "*/")
	head, rest, _ := strings.Cut(text, " ")
	if head != name {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// LineDirectives indexes every //pgmor:<name> directive comment of a file by
// the source line it governs: the comment's own line, and — for comments
// that stand alone on their line — the following line, so a directive can
// sit either at the end of the statement it acknowledges or directly above
// it.
type LineDirectives struct {
	args map[int]string
}

// CollectLineDirectives scans one parsed file for //pgmor:<name> comments.
func CollectLineDirectives(fset *token.FileSet, f *ast.File, name string) *LineDirectives {
	ld := &LineDirectives{args: make(map[int]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			arg, ok := parseDirective(c.Text, name)
			if !ok {
				continue
			}
			posn := fset.Position(c.Pos())
			ld.args[posn.Line] = arg
			if posn.Column == 1 || onlyCommentOnLine(fset, f, c) {
				ld.args[posn.Line+1] = arg
			}
		}
	}
	return ld
}

// onlyCommentOnLine reports whether the comment is the first token on its
// line (i.e. a standalone directive line rather than a trailing comment).
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos().IsValid() && n.Pos() < c.Pos() {
			if p := fset.Position(n.Pos()); p.Line == cpos.Line {
				first = false
				return false
			}
		}
		return true
	})
	return first
}

// At returns the directive argument governing the given position, if any.
func (ld *LineDirectives) At(fset *token.FileSet, pos token.Pos) (arg string, ok bool) {
	if ld == nil {
		return "", false
	}
	arg, ok = ld.args[fset.Position(pos).Line]
	return arg, ok
}
