package krylov

import (
	"repro/internal/dense"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// Congruence projects the sparse descriptor system through the basis V:
//
//	Cr = Vᵀ C V,  Gr = Vᵀ G V,  Br = Vᵀ B,  Lr = L V,
//
// the one-sided (W = V) projection used throughout the paper, which
// preserves passivity for MNA-structured RLC models (PRIMA's key property).
func Congruence(sys *lti.SparseSystem, v *dense.Basis[float64]) *lti.DenseSystem {
	n, m, p := sys.Dims()
	q := v.Len()

	// CV and GV as dense n×q buffers, one sparse MatVec per column.
	cv := make([][]float64, q)
	gv := make([][]float64, q)
	for j := 0; j < q; j++ {
		cv[j] = make([]float64, n)
		gv[j] = make([]float64, n)
		sys.C.MatVec(cv[j], v.Col(j))
		sys.G.MatVec(gv[j], v.Col(j))
	}
	cr := dense.NewMat[float64](q, q)
	gr := dense.NewMat[float64](q, q)
	for i := 0; i < q; i++ {
		vi := v.Col(i)
		for j := 0; j < q; j++ {
			cr.Set(i, j, sparse.Dot(vi, cv[j]))
			gr.Set(i, j, sparse.Dot(vi, gv[j]))
		}
	}
	br := dense.NewMat[float64](q, m)
	for j := 0; j < m; j++ {
		bj := sys.BColumn(j)
		for i := 0; i < q; i++ {
			br.Set(i, j, sparse.Dot(v.Col(i), bj))
		}
	}
	lr := dense.NewMat[float64](p, q)
	for j := 0; j < q; j++ {
		lv := sys.ApplyL(v.Col(j))
		lr.SetCol(j, lv)
	}
	rom, err := lti.NewDenseSystem(cr, gr, br, lr)
	if err != nil {
		// Dimensions are correct by construction.
		panic("krylov: impossible congruence dimension error: " + err.Error())
	}
	return rom
}

// CongruenceBlock projects the splitted system Σᵢ through its thin basis
// V⁽ⁱ⁾ into a BDSM diagonal block (eq. 11): Cir = V⁽ⁱ⁾ᵀCV⁽ⁱ⁾,
// Gir = V⁽ⁱ⁾ᵀGV⁽ⁱ⁾, Bir = V⁽ⁱ⁾ᵀbᵢ, Lir = L·V⁽ⁱ⁾.
func CongruenceBlock(sys *lti.SparseSystem, v *dense.Basis[float64], input int) lti.Block {
	n, _, p := sys.Dims()
	l := v.Len()
	cv := make([]float64, n)
	gv := make([]float64, n)
	cr := dense.NewMat[float64](l, l)
	gr := dense.NewMat[float64](l, l)
	for j := 0; j < l; j++ {
		sys.C.MatVec(cv, v.Col(j))
		sys.G.MatVec(gv, v.Col(j))
		for i := 0; i < l; i++ {
			cr.Set(i, j, sparse.Dot(v.Col(i), cv))
			gr.Set(i, j, sparse.Dot(v.Col(i), gv))
		}
	}
	bi := sys.BColumn(input)
	br := make([]float64, l)
	for i := 0; i < l; i++ {
		br[i] = sparse.Dot(v.Col(i), bi)
	}
	lr := dense.NewMat[float64](p, l)
	for j := 0; j < l; j++ {
		lr.SetCol(j, sys.ApplyL(v.Col(j)))
	}
	return lti.Block{C: cr, G: gr, B: br, L: lr, Input: input}
}
