package krylov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/lti"
)

// rcSystem builds an RC-only grid whose pencil is SPD.
func rcSystem(t *testing.T) *lti.SparseSystem {
	t.Helper()
	cfg := grid.Config{Name: "rc", NX: 9, NY: 8, Layers: 2, Ports: 5, Pads: 2,
		SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 3, NodeC: 50e-15,
		PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 3, RCOnly: true}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCholeskyBackendMatchesLUOnRCGrid(t *testing.T) {
	sys := rcSystem(t)
	n, _, _ := sys.Dims()
	lu, err := NewOperator(sys, 1e9, OperatorOptions{Backend: BackendLU})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewOperator(sys, 1e9, OperatorOptions{Backend: BackendCholesky})
	if err != nil {
		t.Fatal(err)
	}
	if ch.FactorNNZ >= lu.FactorNNZ {
		t.Errorf("Cholesky fill %d not below LU fill %d", ch.FactorNNZ, lu.FactorNNZ)
	}
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	if err := lu.SolvePencil(x1, b); err != nil {
		t.Fatal(err)
	}
	if err := ch.SolvePencil(x2, b); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-9*(1+math.Abs(x1[i])) {
			t.Fatalf("backends disagree at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
	// Worker path through Cholesky.
	wk := ch.Worker()
	x3 := make([]float64, n)
	if err := wk.SolvePencil(x3, b); err != nil {
		t.Fatal(err)
	}
	for i := range x2 {
		if x2[i] != x3[i] {
			t.Fatal("worker Cholesky solve differs")
		}
	}
}

func TestCholeskyBackendRejectsRLCGrid(t *testing.T) {
	sys := testSystem(t) // RLC grid: skew inductor coupling → not SPD
	if _, err := NewOperator(sys, 1e9, OperatorOptions{Backend: BackendCholesky}); err == nil {
		t.Fatal("Cholesky backend accepted an unsymmetric pencil")
	}
}

func TestAutoBackendSelection(t *testing.T) {
	rc := rcSystem(t)
	op, err := NewOperator(rc, 1e9, OperatorOptions{Backend: BackendAuto})
	if err != nil {
		t.Fatal(err)
	}
	if op.UsedBackend != BackendCholesky {
		t.Errorf("auto picked %v on RC grid, want cholesky", op.UsedBackend)
	}
	rlc := testSystem(t)
	op, err = NewOperator(rlc, 1e9, OperatorOptions{Backend: BackendAuto})
	if err != nil {
		t.Fatal(err)
	}
	if op.UsedBackend != BackendLU {
		t.Errorf("auto picked %v on RLC grid, want lu", op.UsedBackend)
	}
}

func TestBackendStrings(t *testing.T) {
	cases := map[Backend]string{
		BackendLU: "lu", BackendIterative: "bicgstab",
		BackendCholesky: "cholesky", BackendAuto: "auto", Backend(99): "unknown",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("Backend(%d).String() = %q, want %q", b, got, want)
		}
	}
}
