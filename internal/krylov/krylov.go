// Package krylov implements the Krylov-subspace projection machinery shared
// by all reduction schemes in this library: a pencil operator abstraction
// A = (s0·C - G)⁻¹C backed by either a direct sparse LU factorization or an
// iterative solver, and a block Arnoldi process with deflation.
//
// The two backends mirror the paper's experimental setup: the LU-backed
// operator is the fast path, while the iterative backend reproduces the
// "factorization is skipped … to save memory" regime used for the largest
// benchmarks (ckt3–ckt5).
package krylov

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/dense"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// Backend selects how the pencil (s0·C - G) is inverted.
type Backend int

const (
	// BackendLU factors the pencil once with sparse LU (default).
	BackendLU Backend = iota
	// BackendIterative solves with Jacobi-preconditioned BiCGStab,
	// trading time for memory on very large grids.
	BackendIterative
	// BackendCholesky factors the pencil with sparse Cholesky — roughly
	// half the work and fill of LU. Valid only for symmetric positive
	// definite pencils (RC-only grids, no inductors); construction fails
	// otherwise.
	BackendCholesky
	// BackendAuto picks Cholesky when the pencil is symmetric positive
	// definite and LU otherwise.
	BackendAuto
)

func (b Backend) String() string {
	switch b {
	case BackendLU:
		return "lu"
	case BackendIterative:
		return "bicgstab"
	case BackendCholesky:
		return "cholesky"
	case BackendAuto:
		return "auto"
	}
	return "unknown"
}

// OperatorOptions configures construction of a pencil operator.
type OperatorOptions struct {
	// Backend selects direct or iterative solves. Default BackendLU.
	Backend Backend
	// LU configures the direct backend.
	LU sparse.LUOptions
	// Iter configures the iterative backend.
	Iter sparse.IterOptions
}

// Operator applies A = (s0·C - G)⁻¹ C and exposes the underlying pencil
// solve. It also counts solves for cost accounting. The Operator itself is
// not safe for concurrent use; obtain per-goroutine views with Worker.
type Operator struct {
	sys    *lti.SparseSystem
	s0     float64
	solver sparse.Solver[float64]
	lu     *sparse.LU[float64] // non-nil for the LU backend
	chol   *sparse.Cholesky    // non-nil for the Cholesky backend
	buf    []float64
	solves atomic.Int64
	// FactorNNZ is the direct-factor fill (0 for the iterative backend).
	FactorNNZ int
	// UsedBackend is the backend actually selected (relevant for
	// BackendAuto).
	UsedBackend Backend
}

// NewOperator builds the expansion-point operator for sys at s0. The pencil
// s0·C - G is assembled exactly once, in sparse form, and shared by the
// symmetry probe and the chosen factorization — on million-node grids the
// assembly itself is a measurable fraction of factor time, so it is never
// repeated. No dense n×n intermediate is formed on any path.
func NewOperator(sys *lti.SparseSystem, s0 float64, opts OperatorOptions) (*Operator, error) {
	n, _, _ := sys.Dims()
	op := &Operator{sys: sys, s0: s0, buf: make([]float64, n), UsedBackend: opts.Backend}
	pencil := sys.C.Add(s0, sys.G, -1)
	backend := opts.Backend
	auto := backend == BackendAuto
	if auto {
		// Symmetric pencils get Cholesky first; an indefinite one (possible
		// even for symmetric RLC formulations) falls back to LU below
		// instead of failing construction.
		if sparse.IsSymmetric(pencil, 1e-12) {
			backend = BackendCholesky
		} else {
			backend = BackendLU
		}
		op.UsedBackend = backend
	}
	if backend == BackendCholesky {
		ch, err := sparse.FactorCholesky(pencil.ToCSC(), opts.LU)
		switch {
		case err == nil:
			op.solver = ch
			op.chol = ch
			op.FactorNNZ = ch.NNZ()
			return op, nil
		case auto && errors.Is(err, sparse.ErrNotSPD):
			backend = BackendLU
			op.UsedBackend = BackendLU
		default:
			return nil, fmt.Errorf("krylov: Cholesky-factoring pencil at s0=%g: %w", s0, err)
		}
	}
	switch backend {
	case BackendLU:
		lu, err := sparse.FactorLU(pencil.ToCSC(), opts.LU)
		if err != nil {
			return nil, fmt.Errorf("krylov: factoring pencil at s0=%g: %w", s0, err)
		}
		op.solver = lu
		op.lu = lu
		op.FactorNNZ = lu.NNZ()
	case BackendIterative:
		it, err := sparse.NewBiCGStab(pencil, opts.Iter)
		if err != nil {
			return nil, fmt.Errorf("krylov: building iterative solver: %w", err)
		}
		op.solver = it
	default:
		return nil, fmt.Errorf("krylov: unknown backend %v", opts.Backend)
	}
	return op, nil
}

// N returns the state dimension.
func (op *Operator) N() int { n, _, _ := op.sys.Dims(); return n }

// S0 returns the expansion point.
func (op *Operator) S0() float64 { return op.s0 }

// System returns the underlying descriptor system.
func (op *Operator) System() *lti.SparseSystem { return op.sys }

// Solves reports how many pencil solves were performed through this
// operator and all of its workers.
func (op *Operator) Solves() int { return int(op.solves.Load()) }

// SolvePencil computes dst = (s0·C - G)⁻¹ b. dst and b may alias.
func (op *Operator) SolvePencil(dst, b []float64) error {
	op.solves.Add(1)
	return op.solver.Solve(dst, b)
}

// Apply computes dst = (s0·C - G)⁻¹ C x. dst and x may alias.
func (op *Operator) Apply(dst, x []float64) error {
	op.sys.C.MatVec(op.buf, x)
	op.solves.Add(1)
	return op.solver.Solve(dst, op.buf)
}

// Worker returns a view of the operator that is safe to use concurrently
// with other workers: it shares the factorization (read-only) but owns its
// scratch buffers. Solve counts are merged into the parent atomically.
func (op *Operator) Worker() *Worker {
	n := op.N()
	return &Worker{op: op, buf: make([]float64, n), w: make([]float64, n)}
}

// Worker is a goroutine-local view of an Operator. Each worker may be used
// by one goroutine at a time.
type Worker struct {
	op     *Operator
	buf, w []float64
}

// SolvePencil computes dst = (s0·C - G)⁻¹ b. dst and b may alias.
func (wk *Worker) SolvePencil(dst, b []float64) error {
	wk.op.solves.Add(1)
	if wk.op.lu != nil {
		wk.op.lu.SolveBuf(dst, b, wk.w)
		return nil
	}
	if wk.op.chol != nil {
		wk.op.chol.SolveBuf(dst, b, wk.w)
		return nil
	}
	return wk.op.solver.Solve(dst, b)
}

// Apply computes dst = (s0·C - G)⁻¹ C x. dst and x may alias.
func (wk *Worker) Apply(dst, x []float64) error {
	wk.op.sys.C.MatVec(wk.buf, x)
	return wk.SolvePencil(dst, wk.buf)
}

// StartColumn returns r = (s0·C - G)⁻¹ bⱼ.
func (wk *Worker) StartColumn(j int) ([]float64, error) {
	r := wk.op.sys.BColumn(j)
	if err := wk.SolvePencil(r, r); err != nil {
		return nil, fmt.Errorf("krylov: start column %d: %w", j, err)
	}
	return r, nil
}

// StartBlock returns R = (s0·C - G)⁻¹ B as dense columns — the first block
// of every Krylov recurrence (eq. 4/10 of the paper).
func (op *Operator) StartBlock() ([][]float64, error) {
	_, m, _ := op.sys.Dims()
	r := make([][]float64, m)
	for j := 0; j < m; j++ {
		r[j] = op.sys.BColumn(j)
		if err := op.SolvePencil(r[j], r[j]); err != nil {
			return nil, fmt.Errorf("krylov: start block column %d: %w", j, err)
		}
	}
	return r, nil
}

// StartColumn returns r = (s0·C - G)⁻¹ bⱼ for a single input column.
func (op *Operator) StartColumn(j int) ([]float64, error) {
	r := op.sys.BColumn(j)
	if err := op.SolvePencil(r, r); err != nil {
		return nil, fmt.Errorf("krylov: start column %d: %w", j, err)
	}
	return r, nil
}

// ErrEmptyBasis is returned when Arnoldi deflates every candidate vector —
// e.g. a zero input matrix.
var ErrEmptyBasis = errors.New("krylov: all candidate vectors deflated; empty basis")

// BlockArnoldi builds an orthonormal basis of the block Krylov subspace
// K_l(A, R) = span{R, AR, …, A^{l-1}R} with modified Gram–Schmidt and
// deflation, following the PRIMA construction: each new block is A applied
// to the previously orthonormalized block. Deflated directions stop
// propagating. The result spans at most l·len(r) columns.
func BlockArnoldi(op *Operator, r [][]float64, l int, stats *dense.OrthoStats) (*dense.Basis[float64], error) {
	if l < 1 {
		return nil, fmt.Errorf("krylov: moment count l must be ≥ 1, got %d", l)
	}
	basis := dense.NewBasis[float64](op.N(), stats)
	// Current block: indices into basis columns accepted in the last round.
	var cur []int
	for _, col := range r {
		if basis.Append(col) {
			cur = append(cur, basis.Len()-1)
		}
	}
	if basis.Len() == 0 {
		return nil, ErrEmptyBasis
	}
	w := make([]float64, op.N())
	for j := 1; j < l && len(cur) > 0; j++ {
		var next []int
		for _, idx := range cur {
			if err := op.Apply(w, basis.Col(idx)); err != nil {
				return nil, fmt.Errorf("krylov: Arnoldi step %d: %w", j, err)
			}
			if basis.Append(w) {
				next = append(next, basis.Len()-1)
			}
		}
		cur = next
	}
	return basis, nil
}

// Arnoldi is single-vector BlockArnoldi: K_l(A, r).
func Arnoldi(op *Operator, r []float64, l int, stats *dense.OrthoStats) (*dense.Basis[float64], error) {
	return BlockArnoldi(op, [][]float64{r}, l, stats)
}
