package krylov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/grid"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// testSystem builds a small power-grid descriptor system.
func testSystem(t *testing.T) *lti.SparseSystem {
	t.Helper()
	cfg := grid.Config{Name: "t", NX: 8, NY: 7, Layers: 2, Ports: 5, Pads: 2,
		SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 3, NodeC: 50e-15,
		PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 3}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOperatorApplyMatchesDefinition(t *testing.T) {
	sys := testSystem(t)
	n, _, _ := sys.Dims()
	s0 := 1e9
	op, err := NewOperator(sys, s0, OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	if err := op.Apply(got, x); err != nil {
		t.Fatal(err)
	}
	// Verify (s0C - G)·got = C·x.
	pencil := sys.C.Add(s0, sys.G, -1)
	lhs := make([]float64, n)
	pencil.MatVec(lhs, got)
	rhs := make([]float64, n)
	sys.C.MatVec(rhs, x)
	for i := range lhs {
		if math.Abs(lhs[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
			t.Fatalf("operator defect at %d: %g vs %g", i, lhs[i], rhs[i])
		}
	}
	if op.Solves() != 1 {
		t.Errorf("Solves = %d, want 1", op.Solves())
	}
	// Worker views must produce identical results.
	wk := op.Worker()
	got2 := make([]float64, n)
	if err := wk.Apply(got2, x); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatal("worker Apply differs from operator Apply")
		}
	}
	if op.Solves() != 2 {
		t.Errorf("worker solve not merged into parent count")
	}
	if op.FactorNNZ == 0 {
		t.Error("FactorNNZ not recorded for LU backend")
	}
}

func TestOperatorBackendsAgree(t *testing.T) {
	sys := testSystem(t)
	n, _, _ := sys.Dims()
	s0 := 1e9
	lu, err := NewOperator(sys, s0, OperatorOptions{Backend: BackendLU})
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewOperator(sys, s0, OperatorOptions{Backend: BackendIterative,
		Iter: sparse.IterOptions{Tol: 1e-13, MaxIter: 20 * n}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	if err := lu.SolvePencil(x1, b); err != nil {
		t.Fatal(err)
	}
	if err := it.SolvePencil(x2, b); err != nil {
		t.Fatal(err)
	}
	num := 0.0
	den := 0.0
	for i := range x1 {
		num += (x1[i] - x2[i]) * (x1[i] - x2[i])
		den += x1[i] * x1[i]
	}
	if math.Sqrt(num/den) > 1e-6 {
		t.Fatalf("backends disagree: rel err %.3e", math.Sqrt(num/den))
	}
}

func TestBlockArnoldiSpansMoments(t *testing.T) {
	// The Krylov basis must (numerically) contain A^k·r0 for k < l: project
	// the true Krylov vectors onto the basis and verify zero residual.
	sys := testSystem(t)
	s0 := 1e9
	op, err := NewOperator(sys, s0, OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := op.StartBlock()
	if err != nil {
		t.Fatal(err)
	}
	l := 4
	basis, err := BlockArnoldi(op, r, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, m, _ := sys.Dims()
	if basis.Len() > l*m {
		t.Fatalf("basis too large: %d > %d", basis.Len(), l*m)
	}
	// Walk true Krylov vectors.
	vecs := make([][]float64, m)
	for j := range vecs {
		vecs[j] = append([]float64(nil), r[j]...)
	}
	for k := 0; k < l; k++ {
		for j := range vecs {
			v := append([]float64(nil), vecs[j]...)
			norm := sparse.Nrm2(v)
			if norm == 0 {
				continue
			}
			// Subtract projection onto basis.
			for c := 0; c < basis.Len(); c++ {
				q := basis.Col(c)
				h := sparse.Dot(q, v)
				sparse.Axpy(v, -h, q)
			}
			if res := sparse.Nrm2(v) / norm; res > 1e-6 {
				t.Fatalf("A^%d r_%d not in span: residual %.3e", k, j, res)
			}
		}
		if k == l-1 {
			break
		}
		for j := range vecs {
			if err := op.Apply(vecs[j], vecs[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = n
}

func TestBlockArnoldiDeflatesDuplicateColumns(t *testing.T) {
	sys := testSystem(t)
	op, err := NewOperator(sys, 1e9, OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := op.StartBlock()
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the first column: it must deflate everywhere.
	dup := append(r, append([]float64(nil), r[0]...))
	var stats dense.OrthoStats
	basis, err := BlockArnoldi(op, dup, 2, &stats)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BlockArnoldi(op, r, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if basis.Len() != ref.Len() {
		t.Fatalf("duplicate column changed basis size: %d vs %d", basis.Len(), ref.Len())
	}
	if stats.Deflated == 0 {
		t.Error("deflation not counted")
	}
}

func TestBlockArnoldiEmptyInput(t *testing.T) {
	sys := testSystem(t)
	op, err := NewOperator(sys, 1e9, OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, _, _ := sys.Dims()
	zero := [][]float64{make([]float64, n)}
	if _, err := BlockArnoldi(op, zero, 3, nil); err != ErrEmptyBasis {
		t.Fatalf("err = %v, want ErrEmptyBasis", err)
	}
	if _, err := BlockArnoldi(op, zero, 0, nil); err == nil {
		t.Fatal("l = 0 accepted")
	}
}

func TestCongruencePreservesSymmetryAndMoments(t *testing.T) {
	sys := testSystem(t)
	s0 := 1e9
	op, err := NewOperator(sys, s0, OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := op.StartBlock()
	if err != nil {
		t.Fatal(err)
	}
	l := 3
	basis, err := BlockArnoldi(op, r, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	rom := Congruence(sys, basis)
	q, m, p := rom.Dims()
	_, ms, ps := sys.Dims()
	if m != ms || p != ps || q != basis.Len() {
		t.Fatalf("ROM dims %d/%d/%d", q, m, p)
	}
	// Congruence preserves symmetry of C (diagonal) up to roundoff.
	for i := 0; i < q; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(rom.C.At(i, j)-rom.C.At(j, i)) > 1e-12*(1+math.Abs(rom.C.At(i, j))) {
				t.Fatalf("Cr asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Moment matching: first l moments of ROM equal the originals — the
	// defining property of PRIMA (eq. 5).
	mo, err := sys.Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := rom.Moments(s0, l)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < l; k++ {
		scale := mo[k].MaxAbs()
		diff := mo[k].Sub(mr[k]).MaxAbs()
		if diff > 1e-7*scale {
			t.Fatalf("moment %d mismatch: rel err %.3e", k, diff/scale)
		}
	}
}

func TestCongruenceBlockMatchesFullCongruenceOnSingleInput(t *testing.T) {
	sys := testSystem(t)
	op, err := NewOperator(sys, 1e9, OperatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := op.StartColumn(0)
	if err != nil {
		t.Fatal(err)
	}
	basis, err := Arnoldi(op, r0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	blk := CongruenceBlock(sys, basis, 0)
	full := Congruence(sys, basis)
	l := basis.Len()
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			if math.Abs(blk.C.At(i, j)-full.C.At(i, j)) > 1e-13 {
				t.Fatal("block C mismatch")
			}
			if math.Abs(blk.G.At(i, j)-full.G.At(i, j)) > 1e-13 {
				t.Fatal("block G mismatch")
			}
		}
		if math.Abs(blk.B[i]-full.B.At(i, 0)) > 1e-13 {
			t.Fatal("block B mismatch")
		}
	}
}
