package passivity

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/lti"
)

// impedanceGrid builds a small power grid whose transfer matrix is the m×m
// port impedance (L selects port nodes, B injects at port nodes) — a passive
// immittance system by construction.
func impedanceGrid(t *testing.T, ports int) *lti.SparseSystem {
	t.Helper()
	cfg := grid.Config{Name: "t", NX: 7, NY: 7, Layers: 2, Ports: ports, Pads: 2,
		SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 3, NodeC: 50e-15,
		PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 5}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Flip B so that H(s) is the positive port impedance matrix: the grid
	// generator's loads draw current out of the node (B = -selection), so
	// negate to get the standard +injection convention for immittance tests.
	b := m.B.Clone()
	b.Scale(-1)
	sys, err := lti.NewSparseSystem(m.C, m.G, b, m.L)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestBDSMROMPassivityWorkflow exercises the full Sec. III-D pipeline. The
// paper warns that BDSM ROMs "may be (weakly) non-passive" — unlike PRIMA,
// Lr ≠ Brᵀ across blocks, so congruence passivity does not carry over. The
// workflow must (a) find stable poles, (b) detect at most a weak violation,
// and (c) repair any violation with the low-cost enforcement.
func TestBDSMROMPassivityWorkflow(t *testing.T) {
	sys := impedanceGrid(t, 4)
	rom, err := core.Reduce(sys, core.Options{Moments: 4})
	if err != nil {
		t.Fatal(err)
	}
	std, err := ToStandard(rom.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Diagonalize(std)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Stable() {
		t.Fatal("BDSM impedance ROM has unstable poles")
	}
	opts := CheckOptions{Samples: 120}
	rep, err := Check(rom, diag.Poles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passive {
		return // non-passivity "seldom occurs" — fine.
	}
	// Any violation must be weak (small relative to the DC impedance level)…
	h0, err := rom.Eval(complex(0, 1e5))
	if err != nil {
		t.Fatal(err)
	}
	if scale := h0.MaxAbs(); -rep.WorstEig > 1e-2*scale {
		t.Fatalf("violation %.3e at ω=%.3e is not weak (scale %.3e)",
			rep.WorstEig, rep.WorstFrequency, scale)
	}
	// …and the enforcement must repair it without touching the poles.
	fixed := EnforceDTerm(std, rep, 1e-9)
	rep2, err := Check(fixed, diag.Poles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Passive {
		t.Fatalf("enforcement failed: worst %.3e at ω=%.3e", rep2.WorstEig, rep2.WorstFrequency)
	}
}

// TestPRIMAROMIsProvablyPassive contrasts BDSM: PRIMA's congruence with
// L = Bᵀ yields Lr = Brᵀ, Cr ⪰ 0, Gr + Grᵀ ⪯ 0 — the classical sufficient
// conditions — so the sampled check must pass outright.
func TestPRIMAROMIsProvablyPassive(t *testing.T) {
	sys := impedanceGrid(t, 4)
	rom, err := baselinePRIMA(t, sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	std, err := ToStandard(rom)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Diagonalize(std)
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Stable() {
		t.Fatal("PRIMA impedance ROM unstable")
	}
	rep, err := Check(rom, diag.Poles, CheckOptions{Samples: 120})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("PRIMA ROM non-passive: worst %.3e at ω=%.3e", rep.WorstEig, rep.WorstFrequency)
	}
}

func TestDiagonalizeReproducesTransfer(t *testing.T) {
	sys := impedanceGrid(t, 3)
	rom, err := core.Reduce(sys, core.Options{Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	blk := &rom.Blocks[0]
	std, err := BlockToStandard(blk)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Diagonalize(std)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{1e6, 1e9, 1e11} {
		s := complex(0, w)
		h1, err := std.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		h2 := diag.Eval(s)
		for i := range h1.Data {
			if cmplx.Abs(h1.Data[i]-h2.Data[i]) > 1e-7*(1+cmplx.Abs(h1.Data[i])) {
				t.Fatalf("diagonal realization differs at ω=%g", w)
			}
		}
	}
}

// baselinePRIMA builds a PRIMA ROM via block Arnoldi + congruence.
func baselinePRIMA(t *testing.T, sys *lti.SparseSystem, l int) (*lti.DenseSystem, error) {
	t.Helper()
	op, err := krylov.NewOperator(sys, 1e9, krylov.OperatorOptions{})
	if err != nil {
		return nil, err
	}
	r, err := op.StartBlock()
	if err != nil {
		return nil, err
	}
	basis, err := krylov.BlockArnoldi(op, r, l, nil)
	if err != nil {
		return nil, err
	}
	return krylov.Congruence(sys, basis), nil
}

// negativeResistorSystem is a deliberately non-passive 1-port: a parallel
// RC with negative conductance G = +g (paper convention G stores -G_std, so
// positive means an active element).
func negativeResistorSystem(t *testing.T) *StandardSystem {
	t.Helper()
	// x' = a x + b u with a < 0 (stable) but H(jω) with negative real part:
	// H(s) = c·b/(s - a) + d, choose c·b < 0, d small negative at DC.
	a := dense.NewMat[float64](1, 1)
	a.Set(0, 0, -1)
	b := dense.NewMat[float64](1, 1)
	b.Set(0, 0, 1)
	c := dense.NewMat[float64](1, 1)
	c.Set(0, 0, -2) // residue -2 → Re H(j0) = -2 < 0: non-passive
	return &StandardSystem{A: a, B: b, C: c}
}

func TestCheckDetectsNonPassive(t *testing.T) {
	s := negativeResistorSystem(t)
	poles := []complex128{-1}
	rep, err := Check(s, poles, CheckOptions{WMin: 1e-2, WMax: 1e2, Samples: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passive {
		t.Fatal("non-passive system reported passive")
	}
	if rep.WorstEig >= 0 {
		t.Fatal("worst eigenvalue not negative")
	}
}

func TestEnforceDTermRestoresPassivity(t *testing.T) {
	s := negativeResistorSystem(t)
	poles := []complex128{-1}
	opts := CheckOptions{WMin: 1e-2, WMax: 1e2, Samples: 60}
	rep, err := Check(s, poles, opts)
	if err != nil {
		t.Fatal(err)
	}
	fixed := EnforceDTerm(s, rep, 1e-6)
	rep2, err := Check(fixed, poles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Passive {
		t.Fatalf("enforced system still non-passive: worst %.3e", rep2.WorstEig)
	}
	// Enforcement must not move poles.
	if fixed.A.At(0, 0) != s.A.At(0, 0) {
		t.Error("enforcement perturbed A")
	}
}

func TestEnforceDTermNoOpOnPassive(t *testing.T) {
	// Passive 1-port: H(s) = 1/(s+1).
	a := dense.NewMat[float64](1, 1)
	a.Set(0, 0, -1)
	b := dense.NewMat[float64](1, 1)
	b.Set(0, 0, 1)
	c := dense.NewMat[float64](1, 1)
	c.Set(0, 0, 1)
	s := &StandardSystem{A: a, B: b, C: c}
	rep, err := Check(s, []complex128{-1}, CheckOptions{WMin: 1e-2, WMax: 1e2, Samples: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatal("passive RC reported non-passive")
	}
	if got := EnforceDTerm(s, rep, 0); got != s {
		t.Error("enforcement modified an already-passive system")
	}
}

func TestHamiltonianFindsCrossings(t *testing.T) {
	// H(s) = 1 - 2/(s+1): Re H(jω) = 1 - 2/(1+ω²), zero crossing at ω = 1.
	a := dense.NewMat[float64](1, 1)
	a.Set(0, 0, -1)
	b := dense.NewMat[float64](1, 1)
	b.Set(0, 0, 1)
	c := dense.NewMat[float64](1, 1)
	c.Set(0, 0, -2)
	d := dense.NewMat[float64](1, 1)
	d.Set(0, 0, 1)
	s := &StandardSystem{A: a, B: b, C: c, D: d}
	crossings, err := HamiltonianImagEigs(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range crossings {
		if math.Abs(w-1) < 1e-3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("crossing at ω=1 not found; got %v", crossings)
	}
}

func TestHamiltonianNoCrossingsForPassive(t *testing.T) {
	// H(s) = 1 + 1/(s+1): Re H(jω) > 0 everywhere — strictly passive.
	a := dense.NewMat[float64](1, 1)
	a.Set(0, 0, -1)
	b := dense.NewMat[float64](1, 1)
	b.Set(0, 0, 1)
	c := dense.NewMat[float64](1, 1)
	c.Set(0, 0, 1)
	d := dense.NewMat[float64](1, 1)
	d.Set(0, 0, 1)
	s := &StandardSystem{A: a, B: b, C: c, D: d}
	crossings, err := HamiltonianImagEigs(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 0 {
		t.Fatalf("unexpected crossings %v for strictly passive system", crossings)
	}
}

func TestToStandardRejectsSingularC(t *testing.T) {
	d, err := lti.NewDenseSystem(dense.NewMat[float64](2, 2), dense.Eye[float64](2),
		dense.NewMat[float64](2, 1), dense.NewMat[float64](1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToStandard(d); err == nil {
		t.Fatal("singular C accepted")
	}
}
