// Package passivity implements the application-issues machinery of
// Sec. III-D of the paper: conversion of descriptor ROM blocks to standard
// state space, per-block eigenvalue diagonalization (eq. 16), passivity
// verification for immittance reduced models (frequency sampling plus a
// regularized Hamiltonian eigenvalue test), and a direct-term passivity
// enforcement.
//
// Thanks to the block-diagonal structure of BDSM ROMs, every step here costs
// O(l³) per block rather than O(q³) on the assembled model.
package passivity

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dense"
	"repro/internal/lti"
)

// StandardSystem is a standard state-space model x' = Ax + Bu, y = Cx + Du.
type StandardSystem struct {
	A *dense.Mat[float64]
	B *dense.Mat[float64]
	C *dense.Mat[float64]
	D *dense.Mat[float64] // may be nil (zero direct term)
}

// Dims returns (n, m, p).
func (s *StandardSystem) Dims() (n, m, p int) { return s.A.Rows, s.B.Cols, s.C.Rows }

// Eval computes H(s) = C (sI - A)⁻¹ B + D.
func (s *StandardSystem) Eval(z complex128) (*dense.Mat[complex128], error) {
	n, _, _ := s.Dims()
	pencil := dense.Eye[complex128](n).Scale(z).Sub(dense.ToComplex(s.A))
	f, err := dense.FactorLU(pencil)
	if err != nil {
		return nil, fmt.Errorf("passivity: sI-A singular at s=%v: %w", z, err)
	}
	x, err := f.SolveMat(dense.ToComplex(s.B))
	if err != nil {
		return nil, err
	}
	h := dense.ToComplex(s.C).Mul(x)
	if s.D != nil {
		h = h.Add(dense.ToComplex(s.D))
	}
	return h, nil
}

var _ lti.System = (*StandardSystem)(nil)

// ToStandard converts a descriptor ROM (Cr, Gr, Br, Lr) with invertible Cr
// into standard form: A = Cr⁻¹Gr, B = Cr⁻¹Br, C = Lr. Cost O(q³); for a
// BDSM ROM use BlockToStandard per block at O(l³) each.
func ToStandard(d *lti.DenseSystem) (*StandardSystem, error) {
	f, err := dense.FactorLU(d.C)
	if err != nil {
		return nil, fmt.Errorf("passivity: descriptor C singular (not an ODE realization): %w", err)
	}
	a, err := f.SolveMat(d.G)
	if err != nil {
		return nil, err
	}
	b, err := f.SolveMat(d.B)
	if err != nil {
		return nil, err
	}
	return &StandardSystem{A: a, B: b, C: d.L.Clone()}, nil
}

// BlockToStandard converts one BDSM block to standard form at O(l³).
func BlockToStandard(blk *lti.Block) (*StandardSystem, error) {
	l := blk.Order()
	bm := dense.NewMat[float64](l, 1)
	bm.SetCol(0, blk.B)
	d, err := lti.NewDenseSystem(blk.C, blk.G, bm, blk.L)
	if err != nil {
		return nil, err
	}
	return ToStandard(d)
}

// DiagonalRealization is the eigen-decomposed form of eq. 16: a complex
// diagonal system (I, Λ, B̃, C̃) equivalent to the standard system it was
// derived from. Poles are directly visible on the diagonal.
type DiagonalRealization struct {
	Poles []complex128           // Λ diagonal
	B     *dense.Mat[complex128] // X⁻¹·B
	C     *dense.Mat[complex128] // C·X
}

// Diagonalize eigendecomposes A = XΛX⁻¹ and transforms the realization
// (eq. 16 of the paper). Fails on defective A (repeated eigenvalues without
// full eigenspace), which does not occur for generic RLC reductions.
func Diagonalize(s *StandardSystem) (*DiagonalRealization, error) {
	vals, vecs, err := dense.Eig(s.A)
	if err != nil {
		return nil, fmt.Errorf("passivity: eigendecomposition failed: %w", err)
	}
	xinv, err := dense.FactorLU(vecs.Clone())
	if err != nil {
		return nil, errors.New("passivity: defective A; eigenvector matrix singular")
	}
	bt, err := xinv.SolveMat(dense.ToComplex(s.B))
	if err != nil {
		return nil, err
	}
	ct := dense.ToComplex(s.C).Mul(vecs)
	return &DiagonalRealization{Poles: vals, B: bt, C: ct}, nil
}

// Eval computes H(s) = Σ c̃ᵢ b̃ᵢ / (s - λᵢ) for the diagonal realization.
func (d *DiagonalRealization) Eval(z complex128) *dense.Mat[complex128] {
	p := d.C.Rows
	m := d.B.Cols
	h := dense.NewMat[complex128](p, m)
	for k, pole := range d.Poles {
		den := z - pole
		for i := 0; i < p; i++ {
			ci := d.C.At(i, k)
			if ci == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				h.Set(i, j, h.At(i, j)+ci*d.B.At(k, j)/den)
			}
		}
	}
	return h
}

// Stable reports whether every pole has negative real part.
func (d *DiagonalRealization) Stable() bool {
	for _, p := range d.Poles {
		if real(p) >= 0 {
			return false
		}
	}
	return true
}

// Report is the result of a passivity check of a square (immittance) ROM.
type Report struct {
	// Stable indicates all poles are in the open left half plane.
	Stable bool
	// Passive indicates λmin(H(jω) + H(jω)ᴴ) ≥ -Tol at every sample.
	Passive bool
	// WorstFrequency and WorstEig locate the most negative Popov eigenvalue.
	WorstFrequency float64
	WorstEig       float64
}

// CheckOptions configures passivity verification.
type CheckOptions struct {
	// WMin, WMax bound the sampled band in rad/s. Defaults 1e5, 1e15.
	WMin, WMax float64
	// Samples is the number of log-spaced samples. Default 200.
	Samples int
	// Tol is the negative-eigenvalue tolerance. Default 1e-10 times the
	// largest sampled Popov eigenvalue magnitude.
	Tol float64
}

func (o *CheckOptions) defaults() {
	if o.WMin <= 0 {
		o.WMin = 1e5
	}
	if o.WMax <= o.WMin {
		o.WMax = 1e15
	}
	if o.Samples <= 0 {
		o.Samples = 200
	}
}

// Check verifies stability and sampled passivity of any square-transfer
// system (p = m), e.g. a power-grid impedance ROM with L = Bᵀ selection.
func Check(sys lti.System, poles []complex128, opts CheckOptions) (*Report, error) {
	opts.defaults()
	_, m, p := sys.Dims()
	if m != p {
		return nil, fmt.Errorf("passivity: transfer matrix must be square, got %d×%d", p, m)
	}
	rep := &Report{Stable: true, Passive: true, WorstEig: math.Inf(1)}
	for _, pole := range poles {
		if real(pole) >= 0 {
			rep.Stable = false
		}
	}
	maxMag := 0.0
	type sample struct {
		w   float64
		min float64
	}
	samples := make([]sample, 0, opts.Samples)
	lw0, lw1 := math.Log10(opts.WMin), math.Log10(opts.WMax)
	for k := 0; k < opts.Samples; k++ {
		w := math.Pow(10, lw0+(lw1-lw0)*float64(k)/float64(opts.Samples-1))
		h, err := sys.Eval(complex(0, w))
		if err != nil {
			return nil, err
		}
		// Popov function Φ = H + Hᴴ is Hermitian; its eigenvalues are real.
		phi := h.Add(h.H())
		minEig, magEig, err := hermitianEigRange(phi)
		if err != nil {
			return nil, err
		}
		if magEig > maxMag {
			maxMag = magEig
		}
		samples = append(samples, sample{w, minEig})
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10 * maxMag
	}
	for _, s := range samples {
		if s.min < rep.WorstEig {
			rep.WorstEig = s.min
			rep.WorstFrequency = s.w
		}
		if s.min < -tol {
			rep.Passive = false
		}
	}
	if !rep.Stable {
		rep.Passive = false
	}
	return rep, nil
}

// hermitianEigRange returns the smallest eigenvalue and largest magnitude
// eigenvalue of a Hermitian complex matrix via its real symmetric embedding
// [Re -Im; Im Re] (eigenvalues appear twice).
func hermitianEigRange(h *dense.Mat[complex128]) (minEig, maxMag float64, err error) {
	n := h.Rows
	e := dense.NewMat[float64](2*n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			re, im := real(h.At(i, j)), imag(h.At(i, j))
			e.Set(i, j, re)
			e.Set(i+n, j+n, re)
			e.Set(i+n, j, im)
			e.Set(i, j+n, -im)
		}
	}
	vals, _, err := dense.EigSym(e)
	if err != nil {
		return 0, 0, err
	}
	minEig = vals[0]
	maxMag = math.Max(math.Abs(vals[0]), math.Abs(vals[len(vals)-1]))
	return minEig, maxMag, nil
}

// HamiltonianImagEigs runs the regularized Hamiltonian test on a standard
// system: with R = D + Dᵀ (regularized by delta·I when singular), purely
// imaginary eigenvalues of
//
//	M = [ A - B R⁻¹ C,      -B R⁻¹ Bᵀ      ]
//	    [ Cᵀ R⁻¹ C,         -(A - B R⁻¹ C)ᵀ ]
//
// mark frequencies where an eigenvalue of the Popov function crosses zero —
// candidate passivity-violation boundaries. Returns the crossing
// frequencies (rad/s).
func HamiltonianImagEigs(s *StandardSystem, delta float64) ([]float64, error) {
	n, m, p := s.Dims()
	if m != p {
		return nil, fmt.Errorf("passivity: Hamiltonian test needs square transfer, got %d×%d", p, m)
	}
	if delta <= 0 {
		delta = 1e-8
	}
	r := dense.NewMat[float64](m, m)
	if s.D != nil {
		r = s.D.Add(s.D.T())
	}
	for i := 0; i < m; i++ {
		r.Set(i, i, r.At(i, i)+delta)
	}
	rf, err := dense.FactorLU(r)
	if err != nil {
		return nil, err
	}
	rinvC, err := rf.SolveMat(s.C)
	if err != nil {
		return nil, err
	}
	rinvBt, err := rf.SolveMat(s.B.T())
	if err != nil {
		return nil, err
	}
	abc := s.A.Sub(s.B.Mul(rinvC)) // A - B R⁻¹ C
	brb := s.B.Mul(rinvBt)         // B R⁻¹ Bᵀ
	crc := s.C.T().Mul(rinvC)      // Cᵀ R⁻¹ C

	h := dense.NewMat[float64](2*n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, abc.At(i, j))
			h.Set(i, j+n, -brb.At(i, j))
			h.Set(i+n, j, crc.At(i, j))
			h.Set(i+n, j+n, -abc.At(j, i))
		}
	}
	vals, err := dense.Eigenvalues(h)
	if err != nil {
		return nil, err
	}
	var crossings []float64
	for _, v := range vals {
		if imag(v) > 0 && math.Abs(real(v)) < 1e-6*(1+cmplx.Abs(v)) {
			crossings = append(crossings, imag(v))
		}
	}
	return crossings, nil
}

// EnforceDTerm returns a minimally perturbed passive system: if the sampled
// Popov function dips to λmin = -v < 0, a direct term D = (v/2 + margin)·I
// is added, shifting Φ(jω) up by 2·(v/2 + margin) uniformly. This is the
// cheapest legitimate enforcement; it perturbs only the feedthrough
// (‖ΔH‖∞ = v/2 + margin) and never the poles. The block-diagonal structure
// is unaffected.
func EnforceDTerm(s *StandardSystem, report *Report, margin float64) *StandardSystem {
	if report.Passive || report.WorstEig >= 0 {
		return s
	}
	if margin < 0 {
		margin = 0
	}
	_, m, _ := s.Dims()
	shift := -report.WorstEig/2 + margin
	d := dense.NewMat[float64](m, m)
	if s.D != nil {
		d = s.D.Clone()
	}
	for i := 0; i < m; i++ {
		d.Set(i, i, d.At(i, i)+shift)
	}
	return &StandardSystem{A: s.A, B: s.B, C: s.C, D: d}
}
