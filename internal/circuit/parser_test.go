package circuit

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := map[string]float64{
		"1":      1,
		"1.5":    1.5,
		"10k":    1e4,
		"2meg":   2e6,
		"3m":     3e-3,
		"4u":     4e-6,
		"5n":     5e-9,
		"6p":     6e-12,
		"7f":     7e-15,
		"8g":     8e9,
		"9t":     9e12,
		"1e-3":   1e-3,
		"2.5E6":  2.5e6,
		"1.5pF":  1.5e-12,
		"10kohm": 1e4,
		"2v":     2,
	}
	for in, want := range cases {
		got, err := ParseValue(in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("ParseValue(%q) = %g, want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1.2.3", "5x"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

const sampleNetlist = `simple power grid fragment
* a comment line
R1 n1 n2 0.5       ; series resistance
R2 n2 0 10
C1 n1 0 1p
C2 n2 0 2p
L1 vdd n1 1n
I1 n2 0 1m
V1 vdd 0 1.8
.probe v(n1) v(n2)
.end
`

func TestParseSampleNetlist(t *testing.T) {
	nl, err := Parse(strings.NewReader(sampleNetlist))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Title != "simple power grid fragment" {
		t.Errorf("Title = %q", nl.Title)
	}
	s := nl.Stats()
	if s.Resistors != 2 || s.Capacitors != 2 || s.Inductors != 1 ||
		s.CurrentSources != 1 || s.VoltageSources != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if len(nl.Probes) != 2 || nl.Probes[0] != "n1" || nl.Probes[1] != "n2" {
		t.Errorf("Probes = %v", nl.Probes)
	}
	m, err := BuildMNA(nl)
	if err != nil {
		t.Fatal(err)
	}
	// States: 3 node voltages + 1 inductor current + 1 vsource current.
	if m.N() != 5 {
		t.Errorf("N = %d, want 5", m.N())
	}
	if m.NumInputs() != 2 {
		t.Errorf("inputs = %d, want 2 (I1 then V1)", m.NumInputs())
	}
	if m.InputNames[0] != "I1" || m.InputNames[1] != "V1" {
		t.Errorf("InputNames = %v", m.InputNames)
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse(strings.NewReader("R1 a b 1\nR2 a b\n"))
	if err == nil {
		t.Fatal("short element line must fail")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("Line = %d, want 2", pe.Line)
	}
}

func TestParseUnknownCard(t *testing.T) {
	if _, err := Parse(strings.NewReader("R1 a 0 1\nXsub a b mysub\n")); err == nil {
		t.Fatal("unknown card must fail after the title line")
	}
}

func TestParseToleratesUnknownDirectives(t *testing.T) {
	nl, err := Parse(strings.NewReader("R1 a 0 1\n.tran 1n 10n\n.option gmin=1e-12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Stats().Resistors != 1 {
		t.Error("resistor lost")
	}
}

func TestWriteNetlistRoundTrip(t *testing.T) {
	nl, err := Parse(strings.NewReader(sampleNetlist))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, buf.String())
	}
	if nl.Stats() != nl2.Stats() {
		t.Errorf("round-trip stats differ: %+v vs %+v", nl.Stats(), nl2.Stats())
	}
	if len(nl2.Probes) != len(nl.Probes) {
		t.Errorf("round-trip probes differ")
	}
	m1, err := BuildMNA(nl)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildMNA(nl2)
	if err != nil {
		t.Fatal(err)
	}
	// Matrices must agree entrywise.
	d1, d2 := m1.G.ToDense(), m2.G.ToDense()
	for i := range d1 {
		for j := range d1[i] {
			if math.Abs(d1[i][j]-d2[i][j]) > 1e-12 {
				t.Fatalf("G differs at (%d,%d)", i, j)
			}
		}
	}
}
