package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError reports a netlist syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("circuit: parse error on line %d: %s", e.Line, e.Msg)
}

// Parse reads a SPICE-subset netlist:
//
//   - comment lines start with '*'; everything after ';' is a comment
//     Rname n1 n2 value      resistor
//     Cname n1 n2 value      capacitor
//     Lname n1 n2 value      inductor
//     Iname n1 n2 value      current source (input port)
//     Vname n1 n2 value      voltage source (input port)
//     .probe v(node) ...     observation outputs
//     .title any text
//     .end                   optional terminator
//
// Values accept standard SPICE magnitude suffixes (f p n u m k meg g t) and
// optional trailing units (e.g. 10k, 1.5pF, 2meg). The first line is taken
// as the title if it does not parse as an element or directive.
func Parse(r io.Reader) (*Netlist, error) {
	nl := &Netlist{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	first := true
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			first = false
			continue
		}
		fields := strings.Fields(line)
		kind := line[0]
		switch {
		case kind == '.':
			if err := parseDirective(nl, fields, lineNo); err != nil {
				return nil, err
			}
		case strings.ContainsRune("RCLIVrcliv", rune(kind)):
			if err := parseElement(nl, fields, lineNo); err != nil {
				if first {
					// SPICE treats the first line as a title.
					nl.Title = line
					first = false
					continue
				}
				return nil, err
			}
		default:
			if first {
				nl.Title = line
			} else {
				return nil, &ParseError{lineNo, fmt.Sprintf("unrecognized card %q", fields[0])}
			}
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("circuit: reading netlist: %w", err)
	}
	return nl, nil
}

func parseDirective(nl *Netlist, fields []string, lineNo int) error {
	switch strings.ToLower(fields[0]) {
	case ".end", ".ends":
		return nil
	case ".title":
		nl.Title = strings.Join(fields[1:], " ")
		return nil
	case ".probe", ".print", ".plot":
		for _, f := range fields[1:] {
			node, ok := parseProbe(f)
			if !ok {
				return &ParseError{lineNo, fmt.Sprintf("bad probe %q (want v(node))", f)}
			}
			nl.AddProbe(node)
		}
		return nil
	default:
		// Unknown directives (.tran, .ac, .option...) are tolerated: the
		// simulation setup lives outside the netlist in this library.
		return nil
	}
}

func parseProbe(s string) (node string, ok bool) {
	ls := strings.ToLower(s)
	if !strings.HasPrefix(ls, "v(") || !strings.HasSuffix(s, ")") {
		return "", false
	}
	node = s[2 : len(s)-1]
	return node, node != ""
}

func parseElement(nl *Netlist, fields []string, lineNo int) error {
	if len(fields) < 4 {
		return &ParseError{lineNo, fmt.Sprintf("element %q needs 4 fields, got %d", fields[0], len(fields))}
	}
	name := fields[0]
	n1, n2 := fields[1], fields[2]
	val, err := ParseValue(fields[3])
	if err != nil {
		return &ParseError{lineNo, fmt.Sprintf("element %q: %v", name, err)}
	}
	switch name[0] {
	case 'R', 'r':
		err = nl.AddResistor(name, n1, n2, val)
	case 'C', 'c':
		err = nl.AddCapacitor(name, n1, n2, val)
	case 'L', 'l':
		err = nl.AddInductor(name, n1, n2, val)
	case 'I', 'i':
		err = nl.AddCurrentSource(name, n1, n2, val)
	case 'V', 'v':
		err = nl.AddVoltageSource(name, n1, n2, val)
	default:
		return &ParseError{lineNo, fmt.Sprintf("unsupported element %q", name)}
	}
	if err != nil {
		return &ParseError{lineNo, err.Error()}
	}
	return nil
}

// ParseValue parses a SPICE numeric literal with magnitude suffix:
// 1.5k → 1500, 2meg → 2e6, 10p → 1e-11, 3mil is not supported. Trailing
// unit letters after the suffix are ignored (1.5pF, 10kOhm).
func ParseValue(s string) (float64, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if ls == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Split numeric prefix.
	end := 0
	for end < len(ls) {
		c := ls[end]
		if c >= '0' && c <= '9' || c == '.' || c == '+' || c == '-' ||
			(c == 'e' && end+1 < len(ls) && (ls[end+1] == '+' || ls[end+1] == '-' || ls[end+1] >= '0' && ls[end+1] <= '9')) {
			if c == 'e' {
				end++ // consume exponent marker and continue with digits
			}
			end++
			continue
		}
		break
	}
	num, err := strconv.ParseFloat(ls[:end], 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric value %q", s)
	}
	suffix := ls[end:]
	mult := 1.0
	switch {
	case suffix == "":
	case strings.HasPrefix(suffix, "meg"):
		mult = 1e6
	case strings.HasPrefix(suffix, "f"):
		mult = 1e-15
	case strings.HasPrefix(suffix, "p"):
		mult = 1e-12
	case strings.HasPrefix(suffix, "n"):
		mult = 1e-9
	case strings.HasPrefix(suffix, "u"):
		mult = 1e-6
	case strings.HasPrefix(suffix, "m"):
		mult = 1e-3
	case strings.HasPrefix(suffix, "k"):
		mult = 1e3
	case strings.HasPrefix(suffix, "g"):
		mult = 1e9
	case strings.HasPrefix(suffix, "t"):
		mult = 1e12
	default:
		// Pure unit suffix such as "ohm", "v", "a", "hz", "h".
		switch suffix {
		case "ohm", "ohms", "v", "a", "hz", "h":
		default:
			return 0, fmt.Errorf("unknown suffix %q in value %q", suffix, s)
		}
	}
	return num * mult, nil
}

// WriteNetlist emits the netlist in the accepted SPICE subset, suitable for
// round-tripping through Parse.
func WriteNetlist(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	if nl.Title != "" {
		fmt.Fprintf(bw, "* %s\n", nl.Title)
	}
	for _, e := range nl.Elements {
		fmt.Fprintf(bw, "%s %s %s %.12g\n", e.Name, e.NodePos, e.NodeNeg, e.Value)
	}
	if len(nl.Probes) > 0 {
		fmt.Fprint(bw, ".probe")
		for _, p := range nl.Probes {
			fmt.Fprintf(bw, " v(%s)", p)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}
