package circuit

import (
	"math"
	"testing"
)

// buildRC returns the canonical single-node RC test circuit: current source
// into node 1 with R and C to ground. H(s) = R/(1+sRC).
func buildRC(t *testing.T, r, c float64) *MNA {
	t.Helper()
	nl := &Netlist{}
	if err := nl.AddResistor("R1", "1", "0", r); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddCapacitor("C1", "1", "0", c); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddCurrentSource("I1", "0", "1", 1); err != nil {
		t.Fatal(err)
	}
	m, err := BuildMNA(nl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMNASingleNodeRC(t *testing.T) {
	r, c := 100.0, 1e-9
	m := buildRC(t, r, c)
	if m.N() != 1 || m.NumInputs() != 1 || m.NumOutputs() != 1 {
		t.Fatalf("dims n=%d m=%d p=%d, want 1/1/1", m.N(), m.NumInputs(), m.NumOutputs())
	}
	// Paper convention: C dx/dt = G x + B u with G = -1/R, C = c, B = +1
	// (source drives current into node 1).
	if got := m.C.At(0, 0); math.Abs(got-c) > 1e-20 {
		t.Errorf("C[0][0] = %g, want %g", got, c)
	}
	if got := m.G.At(0, 0); math.Abs(got+1/r) > 1e-15 {
		t.Errorf("G[0][0] = %g, want %g", got, -1/r)
	}
	if got := m.B.At(0, 0); got != 1 {
		t.Errorf("B[0][0] = %g, want 1 (current injected into node)", got)
	}
	if got := m.L.At(0, 0); got != 1 {
		t.Errorf("L[0][0] = %g, want 1", got)
	}
}

func TestMNADCTransferResistorDivider(t *testing.T) {
	// I1 injects into node 1; R1 = 2Ω node1–node2, R2 = 3Ω node2–gnd.
	// DC: v1 = 5V, v2 = 3V for 1A.
	nl := &Netlist{}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(nl.AddResistor("R1", "1", "2", 2))
	must(nl.AddResistor("R2", "2", "0", 3))
	must(nl.AddCurrentSource("I1", "0", "1", 1))
	nl.AddProbe("1")
	nl.AddProbe("2")
	m, err := BuildMNA(nl)
	must(err)

	// Solve 0 = G x + B u at DC: x = -G⁻¹ B u (dense 2×2 by hand).
	g11, g12 := m.G.At(0, 0), m.G.At(0, 1)
	g21, g22 := m.G.At(1, 0), m.G.At(1, 1)
	b1, b2 := m.B.At(0, 0), m.B.At(1, 0)
	det := g11*g22 - g12*g21
	v1 := -(g22*b1 - g12*b2) / det
	v2 := -(-g21*b1 + g11*b2) / det
	if math.Abs(v1-5) > 1e-12 || math.Abs(v2-3) > 1e-12 {
		t.Fatalf("DC solve v1=%g v2=%g, want 5, 3", v1, v2)
	}
}

func TestMNAInductorStamps(t *testing.T) {
	// V-L-R loop is overkill; check an L between two nodes produces the
	// branch row and skew coupling.
	nl := &Netlist{}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(nl.AddInductor("L1", "1", "2", 1e-9))
	must(nl.AddResistor("R1", "2", "0", 1))
	must(nl.AddResistor("R2", "1", "0", 1))
	must(nl.AddCurrentSource("I1", "0", "1", 1))
	m, err := BuildMNA(nl)
	must(err)
	if m.N() != 3 || m.NumInductors != 1 {
		t.Fatalf("n=%d inductors=%d, want 3, 1", m.N(), m.NumInductors)
	}
	// State order: v(1), v(2), i(L1). C[2][2] = L value.
	if got := m.C.At(2, 2); got != 1e-9 {
		t.Errorf("C branch row = %g, want 1e-9", got)
	}
	// Paper G = -G_std. G_std has +1 at (node1,branch), -1 at (node2,branch),
	// -1 at (branch,node1), +1 at (branch,node2).
	if m.G.At(0, 2) != -1 || m.G.At(1, 2) != 1 {
		t.Errorf("KCL coupling wrong: G[0][2]=%g G[1][2]=%g", m.G.At(0, 2), m.G.At(1, 2))
	}
	if m.G.At(2, 0) != 1 || m.G.At(2, 1) != -1 {
		t.Errorf("KVL row wrong: G[2][0]=%g G[2][1]=%g", m.G.At(2, 0), m.G.At(2, 1))
	}
	// G + Gᵀ must be symmetric negative semidefinite part only from
	// resistors: the inductor coupling is skew and cancels.
	sym00 := m.G.At(0, 2) + m.G.At(2, 0)
	if sym00 != 0 {
		t.Errorf("inductor coupling not skew-symmetric: %g", sym00)
	}
}

func TestMNAVoltageSource(t *testing.T) {
	nl := &Netlist{}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(nl.AddVoltageSource("V1", "1", "0", 1))
	must(nl.AddResistor("R1", "1", "0", 2))
	nl.AddProbe("1")
	m, err := BuildMNA(nl)
	must(err)
	if m.N() != 2 || m.NumVSources != 1 {
		t.Fatalf("n=%d nv=%d", m.N(), m.NumVSources)
	}
	// DC: v1 = u. Solve 0 = Gx + Bu → x = -G⁻¹Bu.
	g11, g12 := m.G.At(0, 0), m.G.At(0, 1)
	g21, g22 := m.G.At(1, 0), m.G.At(1, 1)
	b1, b2 := m.B.At(0, 0), m.B.At(1, 0)
	det := g11*g22 - g12*g21
	v1 := -(g22*b1 - g12*b2) / det
	iv := -(-g21*b1 + g11*b2) / det
	if math.Abs(v1-1) > 1e-12 {
		t.Errorf("v1 = %g, want 1 (voltage source forces node voltage)", v1)
	}
	// Source supplies v/R = 0.5A; branch current convention: current flows
	// from + terminal through the external circuit, so i(V1) = -0.5 in MNA.
	if math.Abs(iv+0.5) > 1e-12 {
		t.Errorf("i(V1) = %g, want -0.5", iv)
	}
}

func TestMNADefaultProbesAreSourceNodes(t *testing.T) {
	nl := &Netlist{}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(nl.AddResistor("R1", "a", "0", 1))
	must(nl.AddResistor("R2", "b", "0", 1))
	must(nl.AddResistor("R3", "a", "b", 1))
	must(nl.AddCurrentSource("I1", "a", "0", 1))
	must(nl.AddCurrentSource("I2", "b", "0", 1))
	m, err := BuildMNA(nl)
	must(err)
	if m.NumOutputs() != 2 {
		t.Fatalf("default outputs = %d, want 2", m.NumOutputs())
	}
	if m.OutputNames[0] != "a" || m.OutputNames[1] != "b" {
		t.Errorf("OutputNames = %v", m.OutputNames)
	}
}

func TestMNAErrors(t *testing.T) {
	nl := &Netlist{}
	if _, err := BuildMNA(nl); err == nil {
		t.Error("empty netlist must fail")
	}
	nl2 := &Netlist{}
	if err := nl2.AddResistor("R1", "1", "1", 5); err == nil {
		t.Error("self-loop must fail")
	}
	if err := nl2.AddResistor("R1", "1", "0", 0); err == nil {
		t.Error("zero resistance must fail")
	}
	if err := nl2.AddResistor("R1", "1", "0", 1); err != nil {
		t.Fatal(err)
	}
	if err := nl2.AddResistor("R1", "2", "0", 1); err == nil {
		t.Error("duplicate name must fail")
	}
	nl2.AddProbe("zzz")
	if _, err := BuildMNA(nl2); err == nil {
		t.Error("unknown probe node must fail")
	}
}

func TestNetlistStats(t *testing.T) {
	nl := &Netlist{}
	_ = nl.AddResistor("R1", "1", "2", 1)
	_ = nl.AddCapacitor("C1", "1", "0", 1)
	_ = nl.AddInductor("L1", "2", "0", 1)
	_ = nl.AddCurrentSource("I1", "0", "1", 1)
	_ = nl.AddVoltageSource("V1", "2", "0", 1)
	s := nl.Stats()
	if s.Nodes != 2 || s.Resistors != 1 || s.Capacitors != 1 || s.Inductors != 1 ||
		s.CurrentSources != 1 || s.VoltageSources != 1 {
		t.Errorf("Stats = %+v", s)
	}
}
