// Package circuit provides the circuit-level substrate of the library: an
// RLC netlist model with current/voltage sources, a SPICE-subset parser, and
// modified nodal analysis (MNA) stamping into the descriptor form used by
// the model reduction algorithms.
//
// The produced matrices follow the paper's sign convention
//
//	C dx/dt = G x + B u,   y = L x,   H(s) = L (sC - G)^{-1} B
//
// so G here is the negated standard MNA conductance matrix.
package circuit

import (
	"fmt"
	"sort"
)

// ElementKind enumerates supported circuit elements.
type ElementKind int

const (
	// Resistor is a two-terminal linear resistance (value in ohms).
	Resistor ElementKind = iota
	// Capacitor is a two-terminal linear capacitance (value in farads).
	Capacitor
	// Inductor is a two-terminal linear inductance (value in henries);
	// it introduces a branch-current state variable.
	Inductor
	// CurrentSource is an independent current source; each one is an input
	// port of the MNA model. Current flows from NodePos through the source
	// to NodeNeg (SPICE convention).
	CurrentSource
	// VoltageSource is an independent voltage source; it introduces a
	// branch-current state variable and an input port.
	VoltageSource
)

func (k ElementKind) String() string {
	switch k {
	case Resistor:
		return "R"
	case Capacitor:
		return "C"
	case Inductor:
		return "L"
	case CurrentSource:
		return "I"
	case VoltageSource:
		return "V"
	}
	return "?"
}

// Element is one netlist entry. Value is the element value in SI units; for
// sources it is the DC/scale value (the transient waveform is supplied by
// the simulation layer).
type Element struct {
	Kind    ElementKind
	Name    string
	NodePos string
	NodeNeg string
	Value   float64
}

// Netlist is an in-memory circuit description. The zero value is usable.
type Netlist struct {
	Title    string
	Elements []Element
	// Probes lists node names whose voltages are observation outputs. When
	// empty, MNA defaults to probing every current-source positive node.
	Probes []string

	names map[string]bool
}

// groundNames are the node names treated as the reference node.
func isGround(name string) bool {
	return name == "0" || name == "gnd" || name == "GND" || name == "Gnd"
}

func (nl *Netlist) add(e Element) error {
	if e.Value < 0 || (e.Value == 0 && (e.Kind == Resistor || e.Kind == Capacitor || e.Kind == Inductor)) {
		if e.Kind == Resistor || e.Kind == Capacitor || e.Kind == Inductor {
			return fmt.Errorf("circuit: %s %q: value must be positive, got %g", e.Kind, e.Name, e.Value)
		}
	}
	if e.NodePos == e.NodeNeg {
		return fmt.Errorf("circuit: %s %q: both terminals on node %q", e.Kind, e.Name, e.NodePos)
	}
	if nl.names == nil {
		nl.names = make(map[string]bool)
	}
	if nl.names[e.Name] {
		return fmt.Errorf("circuit: duplicate element name %q", e.Name)
	}
	nl.names[e.Name] = true
	nl.Elements = append(nl.Elements, e)
	return nil
}

// AddResistor appends a resistor (ohms).
func (nl *Netlist) AddResistor(name, n1, n2 string, ohms float64) error {
	return nl.add(Element{Kind: Resistor, Name: name, NodePos: n1, NodeNeg: n2, Value: ohms})
}

// AddCapacitor appends a capacitor (farads).
func (nl *Netlist) AddCapacitor(name, n1, n2 string, farads float64) error {
	return nl.add(Element{Kind: Capacitor, Name: name, NodePos: n1, NodeNeg: n2, Value: farads})
}

// AddInductor appends an inductor (henries).
func (nl *Netlist) AddInductor(name, n1, n2 string, henries float64) error {
	return nl.add(Element{Kind: Inductor, Name: name, NodePos: n1, NodeNeg: n2, Value: henries})
}

// AddCurrentSource appends an independent current source (amperes) flowing
// from n1 through the source to n2. Each current source is an input port.
func (nl *Netlist) AddCurrentSource(name, n1, n2 string, amps float64) error {
	return nl.add(Element{Kind: CurrentSource, Name: name, NodePos: n1, NodeNeg: n2, Value: amps})
}

// AddVoltageSource appends an independent voltage source (volts) with the
// positive terminal on n1. Each voltage source is an input port.
func (nl *Netlist) AddVoltageSource(name, n1, n2 string, volts float64) error {
	return nl.add(Element{Kind: VoltageSource, Name: name, NodePos: n1, NodeNeg: n2, Value: volts})
}

// AddProbe marks a node voltage as an observation output.
func (nl *Netlist) AddProbe(node string) {
	nl.Probes = append(nl.Probes, node)
}

// NodeNames returns all non-ground node names in deterministic
// (lexicographic) order.
func (nl *Netlist) NodeNames() []string {
	seen := make(map[string]bool)
	var names []string
	for _, e := range nl.Elements {
		for _, n := range [2]string{e.NodePos, e.NodeNeg} {
			if !isGround(n) && !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// Stats summarizes the netlist composition.
type Stats struct {
	Nodes, Resistors, Capacitors, Inductors, CurrentSources, VoltageSources int
}

// Stats returns element and node counts.
func (nl *Netlist) Stats() Stats {
	s := Stats{Nodes: len(nl.NodeNames())}
	for _, e := range nl.Elements {
		switch e.Kind {
		case Resistor:
			s.Resistors++
		case Capacitor:
			s.Capacitors++
		case Inductor:
			s.Inductors++
		case CurrentSource:
			s.CurrentSources++
		case VoltageSource:
			s.VoltageSources++
		}
	}
	return s
}
