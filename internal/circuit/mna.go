package circuit

import (
	"fmt"

	"repro/internal/sparse"
)

// MNA is the modified-nodal-analysis descriptor model of a netlist in the
// paper's sign convention:
//
//	C dx/dt = G x + B u,   y = L x.
//
// The state x stacks node voltages, then inductor branch currents, then
// voltage-source branch currents. Inputs u stack current sources then
// voltage sources in netlist order; outputs y are the probed node voltages.
type MNA struct {
	C *sparse.CSR[float64] // n×n: capacitances and inductances
	G *sparse.CSR[float64] // n×n: negated conductance/incidence stamps
	B *sparse.CSR[float64] // n×m: input incidence
	L *sparse.CSR[float64] // p×n: output selection

	// NodeIndex maps node name to state index; ground is absent.
	NodeIndex map[string]int
	// StateNames labels every state variable (v(node), i(Lxxx), i(Vxxx)).
	StateNames []string
	// InputNames labels every input port (source element names).
	InputNames []string
	// OutputNames labels every output (probed node names).
	OutputNames []string

	NumNodes     int
	NumInductors int
	NumVSources  int
}

// N returns the state dimension.
func (m *MNA) N() int { n, _ := m.C.Dims(); return n }

// NumInputs returns the port count m.
func (m *MNA) NumInputs() int { _, c := m.B.Dims(); return c }

// NumOutputs returns the output count p.
func (m *MNA) NumOutputs() int { r, _ := m.L.Dims(); return r }

// BuildMNA assembles the descriptor model of the netlist. Every non-ground
// node receives its MNA row; inductors and voltage sources append branch
// current rows. Probes default to the positive terminals of all current
// sources when the netlist declares none — the standard observation set for
// power-grid IR-drop analysis.
func BuildMNA(nl *Netlist) (*MNA, error) {
	nodeNames := nl.NodeNames()
	if len(nodeNames) == 0 {
		return nil, fmt.Errorf("circuit: netlist has no non-ground nodes")
	}
	nodeIdx := make(map[string]int, len(nodeNames))
	for i, name := range nodeNames {
		nodeIdx[name] = i
	}
	nv := len(nodeNames)

	// Assign branch-current state indices.
	nL, nV := 0, 0
	for _, e := range nl.Elements {
		switch e.Kind {
		case Inductor:
			nL++
		case VoltageSource:
			nV++
		}
	}
	n := nv + nL + nV

	stateNames := make([]string, 0, n)
	for _, name := range nodeNames {
		stateNames = append(stateNames, "v("+name+")")
	}

	// idx returns the state index for a node name, or -1 for ground.
	idx := func(name string) int {
		if isGround(name) {
			return -1
		}
		return nodeIdx[name]
	}

	cStamp := sparse.NewCOO[float64](n, n)
	gStd := sparse.NewCOO[float64](n, n) // standard-convention G; negated at the end

	// Input ports: current sources first, then voltage sources, each in
	// netlist order.
	var inputNames []string
	type port struct {
		elem Element
		col  int
	}
	var iPorts, vPorts []port
	for _, e := range nl.Elements {
		if e.Kind == CurrentSource {
			iPorts = append(iPorts, port{elem: e})
		}
	}
	for _, e := range nl.Elements {
		if e.Kind == VoltageSource {
			vPorts = append(vPorts, port{elem: e})
		}
	}
	mTotal := len(iPorts) + len(vPorts)
	bStamp := sparse.NewCOO[float64](n, mTotal)

	col := 0
	for i := range iPorts {
		iPorts[i].col = col
		inputNames = append(inputNames, iPorts[i].elem.Name)
		col++
	}
	for i := range vPorts {
		vPorts[i].col = col
		inputNames = append(inputNames, vPorts[i].elem.Name)
		col++
	}

	// Stamp passive elements and branch rows.
	iL, iV := 0, 0
	for _, e := range nl.Elements {
		a, b := idx(e.NodePos), idx(e.NodeNeg)
		switch e.Kind {
		case Resistor:
			g := 1 / e.Value
			stampConductance(gStd, a, b, g)
		case Capacitor:
			stampConductance(cStamp, a, b, e.Value)
		case Inductor:
			j := nv + iL
			iL++
			stateNames = append(stateNames, "i("+e.Name+")")
			// KCL: branch current leaves NodePos, enters NodeNeg.
			if a >= 0 {
				gStd.Add(a, j, 1)
			}
			if b >= 0 {
				gStd.Add(b, j, -1)
			}
			// KVL row: L di/dt - v(a) + v(b) = 0.
			cStamp.Add(j, j, e.Value)
			if a >= 0 {
				gStd.Add(j, a, -1)
			}
			if b >= 0 {
				gStd.Add(j, b, 1)
			}
		}
	}
	for _, p := range iPorts {
		a, b := idx(p.elem.NodePos), idx(p.elem.NodeNeg)
		// SPICE convention: current u flows from NodePos through the source
		// to NodeNeg, i.e. it is drawn out of NodePos and injected into
		// NodeNeg. The paper form C dx/dt = Gx + Bu with G = -G_std keeps
		// B equal to the standard MNA right-hand side.
		if a >= 0 {
			bStamp.Add(a, p.col, -1)
		}
		if b >= 0 {
			bStamp.Add(b, p.col, 1)
		}
	}
	for _, p := range vPorts {
		a, b := idx(p.elem.NodePos), idx(p.elem.NodeNeg)
		j := nv + nL + iV
		iV++
		stateNames = append(stateNames, "i("+p.elem.Name+")")
		if a >= 0 {
			gStd.Add(a, j, 1)
			gStd.Add(j, a, 1)
		}
		if b >= 0 {
			gStd.Add(b, j, -1)
			gStd.Add(j, b, -1)
		}
		// Branch row: v(a) - v(b) = u with standard RHS +u.
		bStamp.Add(j, p.col, 1)
	}

	// Outputs.
	probes := nl.Probes
	if len(probes) == 0 {
		for _, p := range iPorts {
			// Probe the non-ground terminal of each current source.
			switch {
			case !isGround(p.elem.NodePos):
				probes = append(probes, p.elem.NodePos)
			case !isGround(p.elem.NodeNeg):
				probes = append(probes, p.elem.NodeNeg)
			}
		}
	}
	lStamp := sparse.NewCOO[float64](len(probes), n)
	outputNames := make([]string, len(probes))
	for r, name := range probes {
		i, ok := nodeIdx[name]
		if !ok {
			return nil, fmt.Errorf("circuit: probe node %q not present in netlist", name)
		}
		lStamp.Add(r, i, 1)
		outputNames[r] = name
	}

	g := gStd.ToCSR()
	g.Scale(-1) // paper convention: G = -G_std

	return &MNA{
		C:            cStamp.ToCSR(),
		G:            g,
		B:            bStamp.ToCSR(),
		L:            lStamp.ToCSR(),
		NodeIndex:    nodeIdx,
		StateNames:   stateNames,
		InputNames:   inputNames,
		OutputNames:  outputNames,
		NumNodes:     nv,
		NumInductors: nL,
		NumVSources:  nV,
	}, nil
}

// stampConductance applies the standard two-terminal conductance stamp.
func stampConductance(m *sparse.COO[float64], a, b int, g float64) {
	if a >= 0 {
		m.Add(a, a, g)
	}
	if b >= 0 {
		m.Add(b, b, g)
	}
	if a >= 0 && b >= 0 {
		m.Add(a, b, -g)
		m.Add(b, a, -g)
	}
}
