// Package grid generates synthetic multi-layer RLC power delivery networks
// with package parasitics, substituting for the proprietary industrial
// benchmarks (ckt1–ckt5) used in the paper's evaluation.
//
// The generated topology follows Fig. 3 of the paper: VDD pads connect
// through a series package R–L branch to the top metal layer; metal layers
// are regular resistive meshes joined by via arrays; every grid node has a
// decoupling capacitance to ground; transistor-block load currents are
// modeled as current-source input ports on the bottom layer. Small-signal
// analysis treats the VDD supply as AC ground, so the package branch
// terminates at the reference node.
//
// All randomness is drawn from a seeded generator, making every benchmark
// instance reproducible bit-for-bit.
package grid

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/sparse"
)

// Config parameterizes a synthetic power grid.
type Config struct {
	// Name labels the benchmark instance (e.g. "ckt1").
	Name string
	// NX, NY are the node counts per layer in x and y.
	NX, NY int
	// Layers is the number of metal layers (≥1). Layer 0 is the top
	// (package-facing) layer; layer Layers-1 is the bottom (load-facing).
	Layers int
	// Ports is the number of current-source load ports placed on the bottom
	// layer (distinct nodes, seeded placement).
	Ports int
	// Pads is the number of package pads on the top layer. Each pad adds a
	// series R–L branch to AC ground and one inductor-current state.
	Pads int

	// SheetR is the nominal segment resistance of the top layer in ohms;
	// deeper layers are scaled by LayerRScale per layer.
	SheetR float64
	// LayerRScale multiplies segment resistance per layer going down.
	LayerRScale float64
	// ViaR is the via resistance between adjacent layers in ohms.
	ViaR float64
	// ViaPitch is the spacing of the via array (every ViaPitch-th node in x
	// and y is connected through a via).
	ViaPitch int
	// NodeC is the nominal per-node decoupling capacitance in farads.
	NodeC float64
	// PadR and PadL are the package branch resistance and inductance.
	PadR, PadL float64
	// Variation is the relative uniform spread applied to R and C values
	// (0.2 means ±20%).
	Variation float64
	// Seed drives all randomized choices (values, port placement).
	Seed int64
	// RCOnly omits the package inductance: pads become a purely resistive
	// path to ground and no branch-current states are created. The MNA
	// pencil (s0·C - G) is then symmetric positive definite, enabling the
	// Cholesky and CG solver backends.
	RCOnly bool
}

// Validate checks config consistency.
func (c *Config) Validate() error {
	if c.NX < 2 || c.NY < 2 {
		return fmt.Errorf("grid: NX, NY must be ≥ 2, got %d×%d", c.NX, c.NY)
	}
	if c.Layers < 1 {
		return fmt.Errorf("grid: Layers must be ≥ 1, got %d", c.Layers)
	}
	if c.Ports < 1 || c.Ports > c.NX*c.NY {
		return fmt.Errorf("grid: Ports must be in [1, %d], got %d", c.NX*c.NY, c.Ports)
	}
	if c.Pads < 1 || c.Pads > c.NX*c.NY {
		return fmt.Errorf("grid: Pads must be in [1, %d], got %d", c.NX*c.NY, c.Pads)
	}
	if c.SheetR <= 0 || c.ViaR <= 0 || c.NodeC <= 0 || c.PadR <= 0 || c.PadL <= 0 {
		return fmt.Errorf("grid: element values must be positive")
	}
	if c.ViaPitch < 1 {
		return fmt.Errorf("grid: ViaPitch must be ≥ 1, got %d", c.ViaPitch)
	}
	if c.Variation < 0 || c.Variation >= 1 {
		return fmt.Errorf("grid: Variation must be in [0, 1), got %g", c.Variation)
	}
	return nil
}

// Key returns a deterministic fingerprint of every generation parameter.
// Two configs with equal keys build bit-identical models (generation is
// seeded), so the key is safe to use for model-repository deduplication and
// as a component of ROM cache keys.
func (c *Config) Key() string {
	return fmt.Sprintf("%s|%dx%dx%d|ports%d|pads%d|r%g:%g:%g:%d|c%g|pad%g:%g|var%g|seed%d|rc%t",
		c.Name, c.NX, c.NY, c.Layers, c.Ports, c.Pads,
		c.SheetR, c.LayerRScale, c.ViaR, c.ViaPitch, c.NodeC,
		c.PadR, c.PadL, c.Variation, c.Seed, c.RCOnly)
}

// NumNodes returns the total state count of the generated MNA model:
// grid nodes plus, for RLC grids, one midpoint node and one inductor
// branch current per pad.
func (c *Config) NumNodes() int {
	if c.RCOnly {
		return c.NX * c.NY * c.Layers
	}
	// Grid nodes + one R–L midpoint node + one inductor current per pad.
	return c.NX*c.NY*c.Layers + 2*c.Pads
}

// vary returns v perturbed by the config's relative variation.
func vary(rng *rand.Rand, v, variation float64) float64 {
	if variation == 0 {
		return v
	}
	return v * (1 + variation*(2*rng.Float64()-1))
}

// nodeName labels grid node (layer, x, y) for netlist output.
func nodeName(l, x, y int) string {
	return fmt.Sprintf("n%d_%d_%d", l, x, y)
}

// padPositions spreads k pads evenly over the NX×NY top layer.
func (c *Config) padPositions() [][2]int {
	pos := make([][2]int, 0, c.Pads)
	// Roughly square arrangement.
	cols := 1
	for cols*cols < c.Pads {
		cols++
	}
	rows := (c.Pads + cols - 1) / cols
	k := 0
	for r := 0; r < rows && k < c.Pads; r++ {
		for q := 0; q < cols && k < c.Pads; q++ {
			x := (2*q + 1) * c.NX / (2 * cols)
			y := (2*r + 1) * c.NY / (2 * rows)
			if x >= c.NX {
				x = c.NX - 1
			}
			if y >= c.NY {
				y = c.NY - 1
			}
			pos = append(pos, [2]int{x, y})
			k++
		}
	}
	return pos
}

// portPositions picks Ports distinct bottom-layer nodes with a seeded shuffle.
func (c *Config) portPositions(rng *rand.Rand) []int {
	total := c.NX * c.NY
	perm := rng.Perm(total)
	return perm[:c.Ports]
}

// Netlist generates the power grid as a circuit netlist. Intended for small
// and medium grids (examples, parser round-trips); large benchmark instances
// should use Build, which stamps matrices directly.
func (c *Config) Netlist() (*circuit.Netlist, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	nl := &circuit.Netlist{Title: c.Name}

	// Mesh resistors per layer.
	for l := 0; l < c.Layers; l++ {
		layerR := c.SheetR
		for s := 0; s < l; s++ {
			layerR *= c.LayerRScale
		}
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				if x+1 < c.NX {
					name := fmt.Sprintf("Rh%d_%d_%d", l, x, y)
					if err := nl.AddResistor(name, nodeName(l, x, y), nodeName(l, x+1, y), vary(rng, layerR, c.Variation)); err != nil {
						return nil, err
					}
				}
				if y+1 < c.NY {
					name := fmt.Sprintf("Rv%d_%d_%d", l, x, y)
					if err := nl.AddResistor(name, nodeName(l, x, y), nodeName(l, x, y+1), vary(rng, layerR, c.Variation)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	// Via arrays between adjacent layers.
	for l := 0; l+1 < c.Layers; l++ {
		for y := 0; y < c.NY; y += c.ViaPitch {
			for x := 0; x < c.NX; x += c.ViaPitch {
				name := fmt.Sprintf("Rvia%d_%d_%d", l, x, y)
				if err := nl.AddResistor(name, nodeName(l, x, y), nodeName(l+1, x, y), vary(rng, c.ViaR, c.Variation)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Node decoupling capacitance.
	for l := 0; l < c.Layers; l++ {
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				name := fmt.Sprintf("Cd%d_%d_%d", l, x, y)
				if err := nl.AddCapacitor(name, nodeName(l, x, y), "0", vary(rng, c.NodeC, c.Variation)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Package pads: node — Rpkg — mid — Lpkg — ground, or a plain resistor
	// to ground in RC-only mode.
	for k, p := range c.padPositions() {
		if c.RCOnly {
			if err := nl.AddResistor(fmt.Sprintf("Rpkg%d", k), nodeName(0, p[0], p[1]), "0", vary(rng, c.PadR, c.Variation)); err != nil {
				return nil, err
			}
			continue
		}
		mid := fmt.Sprintf("pad%d", k)
		if err := nl.AddResistor(fmt.Sprintf("Rpkg%d", k), nodeName(0, p[0], p[1]), mid, vary(rng, c.PadR, c.Variation)); err != nil {
			return nil, err
		}
		if err := nl.AddInductor(fmt.Sprintf("Lpkg%d", k), mid, "0", vary(rng, c.PadL, c.Variation)); err != nil {
			return nil, err
		}
	}
	// Load ports on the bottom layer.
	bottom := c.Layers - 1
	for k, pos := range c.portPositions(rng) {
		x, y := pos%c.NX, pos/c.NX
		if err := nl.AddCurrentSource(fmt.Sprintf("Iload%d", k), nodeName(bottom, x, y), "0", 1e-3); err != nil {
			return nil, err
		}
		nl.AddProbe(nodeName(bottom, x, y))
	}
	return nl, nil
}

// stampSeq drives the canonical direct-stamping sequence: every element
// value is drawn from rng in the same order as Netlist(), standard-sign
// conductance contributions go to addG, capacitance/inductance entries to
// addC, and the selected port nodes are returned. Both the sparse fast path
// (Build) and the dense small-n shim (BuildDense) replay exactly this
// sequence, which is what makes their outputs comparable entry by entry.
//
// State ordering: grid nodes in (layer, y, x) raster order, one extra node
// per pad (the R–L midpoint), then pad inductor currents.
func (c *Config) stampSeq(rng *rand.Rand, addG, addC func(i, j int, v float64)) []int {
	perLayer := c.NX * c.NY
	nGrid := perLayer * c.Layers
	nPadMid := c.Pads
	if c.RCOnly {
		nPadMid = 0
	}
	node := func(l, x, y int) int { return l*perLayer + y*c.NX + x }
	stamp := func(a, b int, g float64) {
		addG(a, a, g)
		addG(b, b, g)
		addG(a, b, -g)
		addG(b, a, -g)
	}

	// Mesh resistors (same RNG consumption order as Netlist()).
	for l := 0; l < c.Layers; l++ {
		layerR := c.SheetR
		for s := 0; s < l; s++ {
			layerR *= c.LayerRScale
		}
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				if x+1 < c.NX {
					stamp(node(l, x, y), node(l, x+1, y), 1/vary(rng, layerR, c.Variation))
				}
				if y+1 < c.NY {
					stamp(node(l, x, y), node(l, x, y+1), 1/vary(rng, layerR, c.Variation))
				}
			}
		}
	}
	for l := 0; l+1 < c.Layers; l++ {
		for y := 0; y < c.NY; y += c.ViaPitch {
			for x := 0; x < c.NX; x += c.ViaPitch {
				stamp(node(l, x, y), node(l+1, x, y), 1/vary(rng, c.ViaR, c.Variation))
			}
		}
	}
	for l := 0; l < c.Layers; l++ {
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				addC(node(l, x, y), node(l, x, y), vary(rng, c.NodeC, c.Variation))
			}
		}
	}
	// Package pads.
	for k, p := range c.padPositions() {
		if c.RCOnly {
			addG(node(0, p[0], p[1]), node(0, p[0], p[1]), 1/vary(rng, c.PadR, c.Variation))
			continue
		}
		mid := nGrid + k
		ind := nGrid + nPadMid + k
		stamp(node(0, p[0], p[1]), mid, 1/vary(rng, c.PadR, c.Variation))
		// Inductor mid — ground with branch current state `ind`:
		// KCL at mid: current leaves mid; KVL row: L di/dt = v(mid).
		addG(mid, ind, 1)
		addG(ind, mid, -1)
		addC(ind, ind, vary(rng, c.PadL, c.Variation))
	}
	// Ports.
	ports := c.portPositions(rng)
	portNodes := make([]int, c.Ports)
	bottom := c.Layers - 1
	for k, pos := range ports {
		x, y := pos%c.NX, pos/c.NX
		portNodes[k] = node(bottom, x, y)
	}
	return portNodes
}

// Build stamps the power grid directly into sparse MNA descriptor matrices
// in the paper's convention, bypassing netlist string handling. This is the
// only assembly path used outside small-n tests: dense G/C matrices are
// never materialized, so assembly cost and memory are O(nnz) all the way to
// million-node instances. It produces the same model as
// circuit.BuildMNA(c.Netlist()) up to state ordering.
func (c *Config) Build() (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.NumNodes()
	gStd := sparse.NewCOO[float64](n, n)
	cst := sparse.NewCOO[float64](n, n)
	// Four triplets per two-terminal resistor, one per grounded element:
	// mesh segments + vias + pads, and node caps + pad L.
	segs := c.Layers*(2*c.NX*c.NY-c.NX-c.NY) +
		(c.Layers-1)*((c.NX+c.ViaPitch-1)/c.ViaPitch)*((c.NY+c.ViaPitch-1)/c.ViaPitch)
	if c.RCOnly {
		gStd.Reserve(4*segs + c.Pads)
		cst.Reserve(c.NX * c.NY * c.Layers)
	} else {
		gStd.Reserve(4*(segs+c.Pads) + 2*c.Pads)
		cst.Reserve(c.NX*c.NY*c.Layers + c.Pads)
	}

	rng := rand.New(rand.NewSource(c.Seed))
	portNodes := c.stampSeq(rng, gStd.Add, cst.Add)

	bStamp := sparse.NewCOO[float64](n, c.Ports)
	lStamp := sparse.NewCOO[float64](c.Ports, n)
	for k, i := range portNodes {
		// Load draws current out of the node (SPICE source node→ground).
		bStamp.Add(i, k, -1)
		lStamp.Add(k, i, 1)
	}

	g := gStd.ToCSR()
	g.Scale(-1)
	return &Model{
		Config:    *c,
		C:         cst.ToCSR(),
		G:         g,
		B:         bStamp.ToCSR(),
		L:         lStamp.ToCSR(),
		PortNodes: portNodes,
		N:         n,
	}, nil
}

// MaxDenseBuildNodes caps BuildDense: the dense shim exists to cross-check
// the sparse assembly on small instances, not to assemble real grids.
const MaxDenseBuildNodes = 4096

// BuildDense assembles the same model as Build into dense row-major n×n
// arrays (paper sign convention, G = −G_std). It is a compatibility shim for
// small-n property tests — the sparse and dense paths replay the identical
// stamping sequence, so Build's compiled matrices must match these arrays
// exactly, entry for entry, with no floating-point tolerance. Instances
// beyond MaxDenseBuildNodes states are refused.
func (c *Config) BuildDense() (g, cm []float64, portNodes []int, err error) {
	if err := c.Validate(); err != nil {
		return nil, nil, nil, err
	}
	n := c.NumNodes()
	if n > MaxDenseBuildNodes {
		return nil, nil, nil, fmt.Errorf("grid: BuildDense is a small-n test shim (n = %d > %d); use Build", n, MaxDenseBuildNodes)
	}
	g = make([]float64, n*n)
	cm = make([]float64, n*n)
	rng := rand.New(rand.NewSource(c.Seed))
	portNodes = c.stampSeq(rng,
		func(i, j int, v float64) { g[i*n+j] -= v }, // dense side applies G = −G_std directly
		func(i, j int, v float64) { cm[i*n+j] += v },
	)
	return g, cm, portNodes, nil
}

// Model is a stamped power-grid descriptor model in the paper's convention
// C dx/dt = Gx + Bu, y = Lx.
type Model struct {
	Config    Config
	C, G      *sparse.CSR[float64]
	B         *sparse.CSR[float64] // n×m
	L         *sparse.CSR[float64] // p×n (p = m: port voltages)
	PortNodes []int
	N         int
}

// NumPorts returns the input/output port count.
func (m *Model) NumPorts() int { _, mm := m.B.Dims(); return mm }
