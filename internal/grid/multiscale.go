package grid

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/sparse"
)

// MultiscaleConfig parameterizes a synthetic multiscale grid in the style of
// the transmission+distribution networks of Grudzien et al.: a large, purely
// resistive transmission backbone (no decap, no loads — static at every
// frequency) feeding many small RC distribution subgrids that carry all the
// capacitance and all the load ports. The backbone is exactly eliminable by
// Ward reduction, which is the point: these are the ~10⁶-node inputs the
// sparse-first pipeline is sized against, with reduction cost tracking the
// dynamic distribution fraction rather than the full node count.
//
// Unlike the on-die ckt meshes, the backbone is a ring with sparse
// long-range chords — the mean-degree-2..3 topology of real transmission
// networks — so its sparse elimination stays near-linear in nodes (a 2D
// lattice backbone would force Θ(n^1.5) factorization work and superlinear
// fill, which no ordering can avoid).
type MultiscaleConfig struct {
	// Name labels the instance.
	Name string
	// TNodes is the transmission-backbone node count. Backbone node i is
	// connected to i+1 (ring closure at the ends).
	TNodes int
	// TChord adds a long-range chord from every TChord-th backbone node to
	// the node TChord/2 positions further on, giving the loops of a meshed
	// transmission system while keeping mean degree below 3. 0 disables
	// chords (purely radial ring).
	TChord int
	// TransR is the nominal backbone segment resistance in ohms.
	TransR float64
	// Substations is the number of backbone nodes tied to AC ground through
	// SubstationR (the bulk sources; ≥1 keeps the backbone nonsingular).
	Substations int
	// SubstationR is the substation grounding resistance in ohms.
	SubstationR float64
	// Grids is the number of distribution subgrids hanging off the backbone.
	Grids int
	// GX, GY are the per-subgrid mesh dimensions.
	GX, GY int
	// DistR is the nominal distribution segment resistance in ohms.
	DistR float64
	// FeederR is the feeder resistance joining each subgrid's center node to
	// its backbone attachment node.
	FeederR float64
	// NodeC is the per-node decoupling capacitance of distribution nodes in
	// farads. Backbone nodes carry none — that is what makes them static.
	NodeC float64
	// PortsPerGrid is the number of load ports placed in each subgrid.
	PortsPerGrid int
	// Variation is the relative uniform spread applied to R and C values.
	Variation float64
	// Seed drives all randomized choices.
	Seed int64
}

// Validate checks config consistency.
func (c *MultiscaleConfig) Validate() error {
	if c.TNodes < 4 {
		return fmt.Errorf("grid: multiscale TNodes must be ≥ 4, got %d", c.TNodes)
	}
	if c.TChord < 0 || c.TChord == 1 {
		return fmt.Errorf("grid: TChord must be 0 or ≥ 2, got %d", c.TChord)
	}
	if c.GX < 2 || c.GY < 2 {
		return fmt.Errorf("grid: multiscale GX, GY must be ≥ 2, got %d×%d", c.GX, c.GY)
	}
	if c.Grids < 1 {
		return fmt.Errorf("grid: multiscale Grids must be ≥ 1, got %d", c.Grids)
	}
	if c.Substations < 1 || c.Substations > c.TNodes {
		return fmt.Errorf("grid: Substations must be in [1, %d], got %d", c.TNodes, c.Substations)
	}
	if c.PortsPerGrid < 1 || c.PortsPerGrid > c.GX*c.GY {
		return fmt.Errorf("grid: PortsPerGrid must be in [1, %d], got %d", c.GX*c.GY, c.PortsPerGrid)
	}
	if c.TransR <= 0 || c.SubstationR <= 0 || c.DistR <= 0 || c.FeederR <= 0 || c.NodeC <= 0 {
		return fmt.Errorf("grid: element values must be positive")
	}
	if c.Variation < 0 || c.Variation >= 1 {
		return fmt.Errorf("grid: Variation must be in [0, 1), got %g", c.Variation)
	}
	return nil
}

// Key returns a deterministic fingerprint of every generation parameter,
// with the same reproducibility contract as Config.Key.
func (c *MultiscaleConfig) Key() string {
	return fmt.Sprintf("ms:%s|t%d:%d|sub%d|g%dx%dx%d|ports%d|r%g:%g:%g:%g|c%g|var%g|seed%d",
		c.Name, c.TNodes, c.TChord, c.Substations, c.Grids, c.GX, c.GY, c.PortsPerGrid,
		c.TransR, c.SubstationR, c.DistR, c.FeederR, c.NodeC, c.Variation, c.Seed)
}

// NumNodes returns the total state count: backbone plus distribution nodes
// (the network is purely RC, so there are no branch-current states).
func (c *MultiscaleConfig) NumNodes() int {
	return c.TNodes + c.Grids*c.GX*c.GY
}

// NumPorts returns the total load-port count.
func (c *MultiscaleConfig) NumPorts() int { return c.Grids * c.PortsPerGrid }

// spread1D places k points evenly over [0, n).
func spread1D(k, n int) []int {
	pos := make([]int, k)
	for i := 0; i < k; i++ {
		pos[i] = min((2*i+1)*n/(2*k), n-1)
	}
	return pos
}

// chords enumerates the long-range backbone ties: from every TChord-th node
// to the node TChord/2 further on (modulo ring length).
func (c *MultiscaleConfig) chords() [][2]int {
	if c.TChord < 2 {
		return nil
	}
	var out [][2]int
	for i := 0; i < c.TNodes; i += c.TChord {
		j := (i + c.TChord/2 + 1) % c.TNodes
		if j != i && j != (i+1)%c.TNodes && i != (j+1)%c.TNodes {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// Build stamps the multiscale grid directly into sparse MNA descriptor
// matrices in the paper's convention (G = −G_std). State ordering: backbone
// nodes 0..TNodes-1, then each subgrid's nodes in (grid, y, x) order.
func (c *MultiscaleConfig) Build() (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	nT := c.TNodes
	perGrid := c.GX * c.GY
	n := c.NumNodes()
	m := c.NumPorts()

	dNode := func(g, x, y int) int { return nT + g*perGrid + y*c.GX + x }

	gStd := sparse.NewCOO[float64](n, n)
	cst := sparse.NewCOO[float64](n, n)
	segs := nT + len(c.chords()) + c.Grids*(2*c.GX*c.GY-c.GX-c.GY) + c.Grids
	gStd.Reserve(4*segs + c.Substations)
	cst.Reserve(c.Grids * perGrid)

	stamp := func(a, b int, g float64) {
		gStd.Add(a, a, g)
		gStd.Add(b, b, g)
		gStd.Add(a, b, -g)
		gStd.Add(b, a, -g)
	}

	// Backbone ring + chords (RNG order shared with Netlist).
	for i := 0; i < nT; i++ {
		stamp(i, (i+1)%nT, 1/vary(rng, c.TransR, c.Variation))
	}
	for _, ch := range c.chords() {
		stamp(ch[0], ch[1], 1/vary(rng, c.TransR, c.Variation))
	}
	// Substation ground ties.
	for _, i := range spread1D(c.Substations, nT) {
		gStd.Add(i, i, 1/vary(rng, c.SubstationR, c.Variation))
	}
	// Distribution subgrids.
	for g := 0; g < c.Grids; g++ {
		for y := 0; y < c.GY; y++ {
			for x := 0; x < c.GX; x++ {
				if x+1 < c.GX {
					stamp(dNode(g, x, y), dNode(g, x+1, y), 1/vary(rng, c.DistR, c.Variation))
				}
				if y+1 < c.GY {
					stamp(dNode(g, x, y), dNode(g, x, y+1), 1/vary(rng, c.DistR, c.Variation))
				}
			}
		}
	}
	for g := 0; g < c.Grids; g++ {
		for y := 0; y < c.GY; y++ {
			for x := 0; x < c.GX; x++ {
				cst.Add(dNode(g, x, y), dNode(g, x, y), vary(rng, c.NodeC, c.Variation))
			}
		}
	}
	// Feeders: subgrid center — backbone attachment, attachments spread
	// evenly over the ring.
	attach := spread1D(c.Grids, nT)
	for g := 0; g < c.Grids; g++ {
		stamp(dNode(g, c.GX/2, c.GY/2), attach[g], 1/vary(rng, c.FeederR, c.Variation))
	}
	// Load ports: PortsPerGrid distinct nodes per subgrid, seeded shuffle.
	bStamp := sparse.NewCOO[float64](n, m)
	lStamp := sparse.NewCOO[float64](m, n)
	portNodes := make([]int, 0, m)
	for g := 0; g < c.Grids; g++ {
		perm := rng.Perm(perGrid)
		for _, pos := range perm[:c.PortsPerGrid] {
			i := dNode(g, pos%c.GX, pos/c.GX)
			k := len(portNodes)
			portNodes = append(portNodes, i)
			bStamp.Add(i, k, -1)
			lStamp.Add(k, i, 1)
		}
	}

	gm := gStd.ToCSR()
	gm.Scale(-1)
	return &Model{
		C:         cst.ToCSR(),
		G:         gm,
		B:         bStamp.ToCSR(),
		L:         lStamp.ToCSR(),
		PortNodes: portNodes,
		N:         n,
	}, nil
}

// Netlist generates the multiscale grid as a circuit netlist with the same
// seeded element values as Build (identical RNG consumption order). Intended
// for pggen output and parser round-trip tests at small and medium sizes;
// million-node instances should stamp directly with Build.
func (c *MultiscaleConfig) Netlist() (*circuit.Netlist, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	nl := &circuit.Netlist{Title: c.Name}
	tName := func(i int) string { return fmt.Sprintf("t%d", i) }
	dName := func(g, x, y int) string { return fmt.Sprintf("d%d_%d_%d", g, x, y) }

	for i := 0; i < c.TNodes; i++ {
		if err := nl.AddResistor(fmt.Sprintf("Rt%d", i), tName(i), tName((i+1)%c.TNodes), vary(rng, c.TransR, c.Variation)); err != nil {
			return nil, err
		}
	}
	for k, ch := range c.chords() {
		if err := nl.AddResistor(fmt.Sprintf("Rtc%d", k), tName(ch[0]), tName(ch[1]), vary(rng, c.TransR, c.Variation)); err != nil {
			return nil, err
		}
	}
	for k, i := range spread1D(c.Substations, c.TNodes) {
		if err := nl.AddResistor(fmt.Sprintf("Rsub%d", k), tName(i), "0", vary(rng, c.SubstationR, c.Variation)); err != nil {
			return nil, err
		}
	}
	for g := 0; g < c.Grids; g++ {
		for y := 0; y < c.GY; y++ {
			for x := 0; x < c.GX; x++ {
				if x+1 < c.GX {
					if err := nl.AddResistor(fmt.Sprintf("Rdh%d_%d_%d", g, x, y), dName(g, x, y), dName(g, x+1, y), vary(rng, c.DistR, c.Variation)); err != nil {
						return nil, err
					}
				}
				if y+1 < c.GY {
					if err := nl.AddResistor(fmt.Sprintf("Rdv%d_%d_%d", g, x, y), dName(g, x, y), dName(g, x, y+1), vary(rng, c.DistR, c.Variation)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for g := 0; g < c.Grids; g++ {
		for y := 0; y < c.GY; y++ {
			for x := 0; x < c.GX; x++ {
				if err := nl.AddCapacitor(fmt.Sprintf("Cd%d_%d_%d", g, x, y), dName(g, x, y), "0", vary(rng, c.NodeC, c.Variation)); err != nil {
					return nil, err
				}
			}
		}
	}
	attach := spread1D(c.Grids, c.TNodes)
	for g := 0; g < c.Grids; g++ {
		if err := nl.AddResistor(fmt.Sprintf("Rfeed%d", g), dName(g, c.GX/2, c.GY/2), tName(attach[g]), vary(rng, c.FeederR, c.Variation)); err != nil {
			return nil, err
		}
	}
	k := 0
	for g := 0; g < c.Grids; g++ {
		perm := rng.Perm(c.GX * c.GY)
		for _, pos := range perm[:c.PortsPerGrid] {
			name := dName(g, pos%c.GX, pos/c.GX)
			if err := nl.AddCurrentSource(fmt.Sprintf("Iload%d", k), name, "0", 1e-3); err != nil {
				return nil, err
			}
			nl.AddProbe(name)
			k++
		}
	}
	return nl, nil
}

// MultiscaleBenchmark returns the standard scale-ladder instance with
// roughly the requested total node count: half the nodes form the resistive
// transmission backbone, half are split across min(32, …) RC distribution
// subgrids with one port each, so the port count — and with it the BDSM
// block count — stays essentially constant while n grows. Electrical values
// follow the ckt ladder defaults.
func MultiscaleBenchmark(nodes int) (MultiscaleConfig, error) {
	if nodes < 64 {
		return MultiscaleConfig{}, fmt.Errorf("grid: multiscale benchmark needs ≥ 64 nodes, got %d", nodes)
	}
	t := max(nodes/2, 4)
	grids := min(32, max(1, nodes/128))
	g := max(int(math.Sqrt(float64(nodes-t)/float64(grids))), 2)
	cfg := MultiscaleConfig{
		Name:        fmt.Sprintf("ms%d", nodes),
		TNodes:      t,
		TChord:      16,
		TransR:      0.01,
		Substations: max(1, grids/4),
		SubstationR: 0.05,
		Grids:       grids,
		GX:          g, GY: g,
		DistR:        0.05,
		FeederR:      0.5,
		NodeC:        50e-15,
		PortsPerGrid: 1,
		Variation:    0.1,
		Seed:         20110314,
	}
	if err := cfg.Validate(); err != nil {
		return MultiscaleConfig{}, err
	}
	return cfg, nil
}
