package grid

import (
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/lti"
)

func msTestConfig() MultiscaleConfig {
	return MultiscaleConfig{Name: "mstest", TNodes: 30, TChord: 8, TransR: 0.01,
		Substations: 2, SubstationR: 0.05, Grids: 3, GX: 4, GY: 3,
		DistR: 0.05, FeederR: 0.5, NodeC: 50e-15, PortsPerGrid: 2,
		Variation: 0.15, Seed: 42}
}

// TestMultiscaleNetlistAndDirectTransferEquivalence mirrors the Config
// cross-check: the netlist path and the direct stamping path must realize
// the same transfer matrix.
func TestMultiscaleNetlistAndDirectTransferEquivalence(t *testing.T) {
	cfg := msTestConfig()
	direct, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sysDirect, err := lti.NewSparseSystem(direct.C, direct.G, direct.B, direct.L)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := cfg.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	mna, err := circuit.BuildMNA(nl)
	if err != nil {
		t.Fatal(err)
	}
	sysNetlist, err := lti.NewSparseSystem(mna.C, mna.G, mna.B, mna.L)
	if err != nil {
		t.Fatal(err)
	}
	n1, m1, p1 := sysDirect.Dims()
	n2, m2, p2 := sysNetlist.Dims()
	if n1 != n2 || m1 != m2 || p1 != p2 {
		t.Fatalf("dims differ: %d/%d/%d vs %d/%d/%d", n1, m1, p1, n2, m2, p2)
	}
	if n1 != cfg.NumNodes() || m1 != cfg.NumPorts() {
		t.Fatalf("n=%d m=%d disagree with NumNodes=%d NumPorts=%d", n1, m1, cfg.NumNodes(), cfg.NumPorts())
	}
	for _, w := range []float64{1e5, 1e8, 3e9, 1e11} {
		s := complex(0, w)
		h1, err := sysDirect.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := sysNetlist.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p1; i++ {
			for j := 0; j < m1; j++ {
				d := cmplx.Abs(h1.At(i, j) - h2.At(i, j))
				if d > 1e-9*(1+cmplx.Abs(h1.At(i, j))) {
					t.Fatalf("ω=%g: H[%d][%d] differs: %v vs %v", w, i, j, h1.At(i, j), h2.At(i, j))
				}
			}
		}
	}
}

// TestMultiscaleBackboneIsStatic pins the structural property the generator
// exists for: backbone nodes carry no capacitance, load, or probe, so the
// whole transmission tier is Ward-eliminable.
func TestMultiscaleBackboneIsStatic(t *testing.T) {
	cfg := msTestConfig()
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	nT := cfg.TNodes
	for i := 0; i < nT; i++ {
		if m.C.RowPtr[i+1] != m.C.RowPtr[i] {
			t.Fatalf("backbone node %d has a C entry", i)
		}
	}
	for _, pn := range m.PortNodes {
		if pn < nT {
			t.Fatalf("port node %d placed on the backbone", pn)
		}
	}
	// Backbone G rows must be nonempty (mesh + possible substation tie) so
	// the static states are genuinely eliminable, not merely decoupled.
	for i := 0; i < nT; i++ {
		if m.G.RowPtr[i+1] == m.G.RowPtr[i] {
			t.Fatalf("backbone node %d has an empty G row", i)
		}
	}
}

func TestMultiscaleKeyDistinguishesConfigs(t *testing.T) {
	a := msTestConfig()
	b := a
	if a.Key() != b.Key() {
		t.Fatal("identical configs must share a key")
	}
	b.Seed++
	if a.Key() == b.Key() {
		t.Fatal("seed change must change the key")
	}
	c := a
	c.GX++
	if a.Key() == c.Key() {
		t.Fatal("dimension change must change the key")
	}
}

func TestMultiscaleBenchmarkLadder(t *testing.T) {
	for _, nodes := range []int{1000, 10000, 100000} {
		cfg, err := MultiscaleBenchmark(nodes)
		if err != nil {
			t.Fatal(err)
		}
		got := cfg.NumNodes()
		if got < nodes/2 || got > 2*nodes {
			t.Fatalf("MultiscaleBenchmark(%d) yields %d nodes, want within 2× of request", nodes, got)
		}
		if ports := cfg.NumPorts(); ports > 32 {
			t.Fatalf("MultiscaleBenchmark(%d) yields %d ports, want ≤ 32 (constant port ladder)", nodes, ports)
		}
		backbone := cfg.TNodes
		if frac := float64(backbone) / float64(got); frac < 0.25 || frac > 0.75 {
			t.Fatalf("MultiscaleBenchmark(%d): backbone fraction %.2f outside [0.25, 0.75]", nodes, frac)
		}
	}
	if _, err := MultiscaleBenchmark(10); err == nil {
		t.Fatal("want an error for absurdly small node counts")
	}
}
