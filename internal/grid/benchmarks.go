package grid

import "fmt"

// Benchmark identifiers mirroring the paper's industrial test cases
// (Table II): node counts from 6k to 1.7M and port counts from 51 to 1429.
const (
	Ckt1 = "ckt1"
	Ckt2 = "ckt2"
	Ckt3 = "ckt3"
	Ckt4 = "ckt4"
	Ckt5 = "ckt5"
)

// baseConfigs are the full-scale analogues of the paper's benchmarks. The
// (NX, NY, Layers) choices reproduce the node counts of Table II:
//
//	ckt1:  77×77×1  ≈ 6k nodes,   51 ports
//	ckt2: 100×100×2 ≈ 20k nodes, 108 ports
//	ckt3: 200×200×2 ≈ 80k nodes, 204 ports
//	ckt4: 202×202×3 ≈ 123k nodes, 315 ports
//	ckt5: 652×652×4 ≈ 1.7M nodes, 1429 ports
var baseConfigs = map[string]Config{
	Ckt1: {Name: Ckt1, NX: 77, NY: 77, Layers: 1, Ports: 51, Pads: 4},
	Ckt2: {Name: Ckt2, NX: 100, NY: 100, Layers: 2, Ports: 108, Pads: 9},
	Ckt3: {Name: Ckt3, NX: 200, NY: 200, Layers: 2, Ports: 204, Pads: 16},
	Ckt4: {Name: Ckt4, NX: 202, NY: 202, Layers: 3, Ports: 315, Pads: 16},
	Ckt5: {Name: Ckt5, NX: 652, NY: 652, Layers: 4, Ports: 1429, Pads: 25},
}

// MatchedMoments returns the moment count l the paper uses for each
// benchmark in Table II (6, 10, 10, 8, 10).
func MatchedMoments(name string) int {
	switch name {
	case Ckt1:
		return 6
	case Ckt2, Ckt3, Ckt5:
		return 10
	case Ckt4:
		return 8
	}
	return 6
}

// Names lists the benchmark identifiers in Table II order.
func Names() []string { return []string{Ckt1, Ckt2, Ckt3, Ckt4, Ckt5} }

// Benchmark returns the configuration of the named Table II analogue,
// geometrically scaled by scale ∈ (0, 1]: linear dimensions, port count and
// pad count shrink proportionally (ports at least 4, pads at least 1), so a
// scaled instance exercises the same many-port regime at laptop size.
func Benchmark(name string, scale float64) (Config, error) {
	base, ok := baseConfigs[name]
	if !ok {
		return Config{}, fmt.Errorf("grid: unknown benchmark %q (want ckt1..ckt5)", name)
	}
	if scale <= 0 || scale > 1 {
		return Config{}, fmt.Errorf("grid: scale must be in (0, 1], got %g", scale)
	}
	cfg := base
	cfg.NX = max(4, int(float64(base.NX)*scale))
	cfg.NY = max(4, int(float64(base.NY)*scale))
	cfg.Ports = max(4, int(float64(base.Ports)*scale))
	cfg.Pads = max(1, int(float64(base.Pads)*scale))
	if cfg.Ports > cfg.NX*cfg.NY {
		cfg.Ports = cfg.NX * cfg.NY
	}
	if cfg.Pads > cfg.NX*cfg.NY {
		cfg.Pads = cfg.NX * cfg.NY
	}
	applyElectricalDefaults(&cfg, scale)
	return cfg, nil
}

// applyElectricalDefaults fills in the electrical parameters shared by all
// benchmark instances. Values are chosen so the grid exhibits a package
// L–C resonance near 10⁹–10¹⁰ rad/s and distributed RC rolloff above
// 10¹² rad/s, giving the frequency sweep of Fig. 5 interesting structure
// across its 10⁵–10¹⁵ rad/s band.
//
// The per-element values depend continuously on the geometric scale: a
// scaled instance models the same die sampled at a coarser pitch, so each
// segment is 1/scale times longer (SheetR ∝ 1/scale) and each node lumps
// 1/scale² times the area (NodeC ∝ 1/scale²). At scale 1 the values are
// exactly the paper-calibrated defaults. This makes H(·; scale) a continuous
// family between the integer grid-size steps — the property the parametric
// Δ-scale interpolation in internal/param relies on. Package parasitics
// (pad R/L, via R) belong to the physical package, not the modeling pitch,
// and stay fixed.
func applyElectricalDefaults(cfg *Config, scale float64) {
	cfg.SheetR = 0.05 / scale
	cfg.LayerRScale = 2.0
	cfg.ViaR = 0.5
	cfg.ViaPitch = 4
	cfg.NodeC = 50e-15 / (scale * scale)
	cfg.PadR = 0.1
	cfg.PadL = 0.5e-9
	cfg.Variation = 0.2
	cfg.Seed = 20110314 // DATE 2011 conference date
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
