package grid

import (
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/lti"
)

// TestNetlistAndDirectTransferEquivalence is the strongest generator
// cross-check: the SPICE-netlist path (string netlist → parser-grade model →
// circuit.BuildMNA) and the direct stamping path (Config.Build) use
// different state orderings and assembly code, but must realize the same
// transfer matrix H(s) at every frequency.
func TestNetlistAndDirectTransferEquivalence(t *testing.T) {
	for _, rcOnly := range []bool{false, true} {
		cfg := Config{Name: "eq", NX: 5, NY: 4, Layers: 2, Ports: 3, Pads: 2,
			SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 2, NodeC: 50e-15,
			PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 99, RCOnly: rcOnly}

		direct, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		sysDirect, err := lti.NewSparseSystem(direct.C, direct.G, direct.B, direct.L)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := cfg.Netlist()
		if err != nil {
			t.Fatal(err)
		}
		mna, err := circuit.BuildMNA(nl)
		if err != nil {
			t.Fatal(err)
		}
		sysNetlist, err := lti.NewSparseSystem(mna.C, mna.G, mna.B, mna.L)
		if err != nil {
			t.Fatal(err)
		}
		n1, m1, p1 := sysDirect.Dims()
		n2, m2, p2 := sysNetlist.Dims()
		if n1 != n2 || m1 != m2 || p1 != p2 {
			t.Fatalf("rcOnly=%v: dims differ: %d/%d/%d vs %d/%d/%d", rcOnly, n1, m1, p1, n2, m2, p2)
		}
		for _, w := range []float64{1e5, 1e8, 3e9, 1e11, 1e13} {
			s := complex(0, w)
			h1, err := sysDirect.Eval(s)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := sysNetlist.Eval(s)
			if err != nil {
				t.Fatal(err)
			}
			// Port ordering: both paths enumerate load ports in creation
			// order (Iload0, Iload1, ...), and outputs are the probes in the
			// same order, so H entries must agree elementwise.
			for i := 0; i < p1; i++ {
				for j := 0; j < m1; j++ {
					d := cmplx.Abs(h1.At(i, j) - h2.At(i, j))
					if d > 1e-9*(1+cmplx.Abs(h1.At(i, j))) {
						t.Fatalf("rcOnly=%v ω=%g: H[%d][%d] differs: %v vs %v",
							rcOnly, w, i, j, h1.At(i, j), h2.At(i, j))
					}
				}
			}
		}
	}
}

func TestRCOnlyGridHasNoInductorStates(t *testing.T) {
	cfg := Config{Name: "rc", NX: 5, NY: 5, Layers: 1, Ports: 3, Pads: 2,
		SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 2, NodeC: 50e-15,
		PadR: 0.1, PadL: 0.5e-9, Variation: 0, Seed: 1, RCOnly: true}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 25 {
		t.Fatalf("N = %d, want 25 (grid nodes only)", m.N)
	}
	if m.N != cfg.NumNodes() {
		t.Fatalf("NumNodes() = %d disagrees with built N = %d", cfg.NumNodes(), m.N)
	}
	// C must be diagonal (pure node capacitances).
	for i := 0; i < m.N; i++ {
		for k := m.C.RowPtr[i]; k < m.C.RowPtr[i+1]; k++ {
			if m.C.ColIdx[k] != i {
				t.Fatal("RC-only C matrix has off-diagonal entries")
			}
		}
	}
}
