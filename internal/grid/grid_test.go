package grid

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sparse"
)

func smallConfig() Config {
	cfg := Config{Name: "test", NX: 6, NY: 5, Layers: 2, Ports: 4, Pads: 2}
	applyElectricalDefaults(&cfg, 1)
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NX = 1 },
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.Ports = c.NX*c.NY + 1 },
		func(c *Config) { c.Pads = 0 },
		func(c *Config) { c.SheetR = 0 },
		func(c *Config) { c.ViaPitch = 0 },
		func(c *Config) { c.Variation = 1.5 },
	}
	for i, mutate := range cases {
		bad := smallConfig()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBuildDimensions(t *testing.T) {
	cfg := smallConfig()
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantN := 6*5*2 + 2 + 2 // grid + pad midpoints + inductor currents
	if m.N != wantN {
		t.Fatalf("N = %d, want %d", m.N, wantN)
	}
	if m.NumPorts() != 4 {
		t.Fatalf("ports = %d, want 4", m.NumPorts())
	}
	rows, cols := m.C.Dims()
	if rows != wantN || cols != wantN {
		t.Fatalf("C dims %d×%d", rows, cols)
	}
	p, n := m.L.Dims()
	if p != 4 || n != wantN {
		t.Fatalf("L dims %d×%d", p, n)
	}
}

func TestBuildDeterminism(t *testing.T) {
	cfg := smallConfig()
	a, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NNZ() != b.G.NNZ() {
		t.Fatal("non-deterministic structure")
	}
	for k := range a.G.Val {
		if a.G.Val[k] != b.G.Val[k] {
			t.Fatal("non-deterministic values")
		}
	}
	for k := range a.PortNodes {
		if a.PortNodes[k] != b.PortNodes[k] {
			t.Fatal("non-deterministic port placement")
		}
	}
}

func TestGridGMatrixProperties(t *testing.T) {
	cfg := smallConfig()
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Paper convention: G = -G_std. The node-voltage block of -G must be a
	// symmetric M-matrix-like Laplacian: positive diagonal, nonpositive
	// off-diagonal; inductor coupling is skew.
	nGrid := 6*5*2 + 2
	for i := 0; i < nGrid; i++ {
		if -m.G.At(i, i) <= 0 {
			t.Fatalf("node %d: -G diagonal %g not positive", i, -m.G.At(i, i))
		}
	}
	// Symmetry of the resistive block.
	for i := 0; i < nGrid; i++ {
		for k := m.G.RowPtr[i]; k < m.G.RowPtr[i+1]; k++ {
			j := m.G.ColIdx[k]
			if j >= nGrid {
				continue
			}
			if math.Abs(m.G.Val[k]-m.G.At(j, i)) > 1e-12*math.Abs(m.G.Val[k]) {
				t.Fatalf("resistive block asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// C is diagonal-positive on nodes and inductor rows.
	for i := 0; i < m.N; i++ {
		hasMass := m.C.At(i, i) > 0
		isPadMid := i >= 6*5*2 && i < 6*5*2+2
		if !hasMass && !isPadMid {
			t.Fatalf("state %d has no capacitance/inductance mass", i)
		}
	}
}

func TestGridConnectivitySolvableAtDC(t *testing.T) {
	// (s0·C - G) at s0 = 0 reduces to -G = G_std, which must be nonsingular
	// thanks to the grounded package branch and port placement.
	cfg := smallConfig()
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	gstd := m.G.Clone()
	gstd.Scale(-1)
	if _, err := sparse.FactorLU(gstd.ToCSC(), sparse.LUOptions{}); err != nil {
		t.Fatalf("DC conductance matrix singular: %v", err)
	}
}

func TestNetlistMatchesBuildPortCount(t *testing.T) {
	cfg := smallConfig()
	nl, err := cfg.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	mna, err := circuit.BuildMNA(nl)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if mna.NumInputs() != direct.NumPorts() {
		t.Fatalf("netlist ports %d != direct ports %d", mna.NumInputs(), direct.NumPorts())
	}
	if mna.N() != direct.N {
		t.Fatalf("netlist states %d != direct states %d", mna.N(), direct.N)
	}
	st := nl.Stats()
	wantR := (5*5+6*4)*2 + 2*2 + 2 // mesh (per layer) + vias (6×5 pitch 4 → 2×2) + pad R
	if st.Resistors != wantR {
		t.Errorf("resistors = %d, want %d", st.Resistors, wantR)
	}
	if st.Capacitors != 60 {
		t.Errorf("capacitors = %d, want 60", st.Capacitors)
	}
	if st.Inductors != 2 || st.CurrentSources != 4 {
		t.Errorf("inductors=%d sources=%d", st.Inductors, st.CurrentSources)
	}
}

func TestBenchmarkSuite(t *testing.T) {
	for _, name := range Names() {
		cfg, err := Benchmark(name, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Name != name {
			t.Errorf("name %q", cfg.Name)
		}
		if l := MatchedMoments(name); l < 6 || l > 10 {
			t.Errorf("%s: moments %d out of Table II range", name, l)
		}
	}
	if _, err := Benchmark("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Benchmark(Ckt1, 0); err == nil {
		t.Error("zero scale accepted")
	}
	// Full-scale ckt1 must hit the paper's node/port counts.
	cfg, err := Benchmark(Ckt1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := cfg.NumNodes(); n < 5900 || n > 6100 {
		t.Errorf("ckt1 nodes = %d, want ≈6k", n)
	}
	if cfg.Ports != 51 {
		t.Errorf("ckt1 ports = %d, want 51", cfg.Ports)
	}
}

func TestBenchmarkBuildSmallScale(t *testing.T) {
	cfg, err := Benchmark(Ckt1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The pencil s0·C - G at s0 = 1e9 must factor (regular pencil).
	s0 := 1e9
	pencil := m.C.Add(s0, m.G, -1).ToCSC()
	if _, err := sparse.FactorLU(pencil, sparse.LUOptions{}); err != nil {
		t.Fatalf("pencil singular: %v", err)
	}
}
