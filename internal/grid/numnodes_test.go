package grid

import "testing"

func TestNumNodesMatchesBuild(t *testing.T) {
	for _, rc := range []bool{false, true} {
		cfg := smallConfig()
		cfg.RCOnly = rc
		m, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		if m.N != cfg.NumNodes() {
			t.Fatalf("rcOnly=%v: NumNodes=%d built N=%d", rc, cfg.NumNodes(), m.N)
		}
	}
}
