package grid

import (
	"math"
	"testing"
)

func TestNumNodesMatchesBuild(t *testing.T) {
	for _, rc := range []bool{false, true} {
		cfg := smallConfig()
		cfg.RCOnly = rc
		m, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		if m.N != cfg.NumNodes() {
			t.Fatalf("rcOnly=%v: NumNodes=%d built N=%d", rc, cfg.NumNodes(), m.N)
		}
	}
}

// TestBenchmarkElectricalScaling pins the continuous electrical family: a
// scaled instance models the same die at coarser pitch, so per-segment R
// grows like 1/scale and per-node C like 1/scale², continuously in scale —
// with the paper-calibrated values exactly at scale 1. This continuity is
// what makes Δ-scale ROM interpolation (internal/param) well-posed between
// integer grid-size steps.
func TestBenchmarkElectricalScaling(t *testing.T) {
	at := func(s float64) Config {
		cfg, err := Benchmark(Ckt1, s)
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	full := at(1)
	if full.SheetR != 0.05 || full.NodeC != 50e-15 {
		t.Fatalf("scale 1 must keep paper values, got R=%g C=%g", full.SheetR, full.NodeC)
	}
	half := at(0.5)
	if math.Abs(half.SheetR-0.1) > 1e-15 || math.Abs(half.NodeC-200e-15) > 1e-27 {
		t.Fatalf("scale 0.5: R=%g C=%g, want 0.1, 2e-13", half.SheetR, half.NodeC)
	}
	// Continuity: two scales inside one integer plateau share geometry but
	// differ (smoothly) in electricals.
	a, b := at(0.236), at(0.246)
	if a.NX != b.NX || a.Ports != b.Ports {
		t.Fatalf("scales 0.236/0.246 left the geometric plateau: %+v vs %+v", a, b)
	}
	if !(a.SheetR > b.SheetR) || !(a.NodeC > b.NodeC) {
		t.Fatalf("electricals not strictly decreasing in scale: R %g→%g, C %g→%g",
			a.SheetR, b.SheetR, a.NodeC, b.NodeC)
	}
	// Package parasitics belong to the package, not the pitch.
	if a.PadR != full.PadR || a.PadL != full.PadL || a.ViaR != full.ViaR {
		t.Fatal("package parasitics must not scale")
	}
}
