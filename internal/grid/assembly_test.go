package grid

import (
	"testing"

	"repro/internal/sparse"
)

// TestSparseDenseAssemblyExactEquality cross-checks the sparse fast path
// against the dense small-n shim on every seed benchmark, in both RC and RLC
// variants: identical nonzero pattern and bit-identical values, no
// tolerance. This is only possible because COO compilation is a stable sort
// — duplicate stamps sum in insertion order on both paths.
func TestSparseDenseAssemblyExactEquality(t *testing.T) {
	for _, name := range Names() {
		for _, rcOnly := range []bool{false, true} {
			cfg, err := Benchmark(name, 0.04)
			if err != nil {
				t.Fatal(err)
			}
			cfg.RCOnly = rcOnly
			m, err := cfg.Build()
			if err != nil {
				t.Fatal(err)
			}
			dg, dc, dports, err := cfg.BuildDense()
			if err != nil {
				t.Fatal(err)
			}
			n := m.N
			if len(dg) != n*n {
				t.Fatalf("%s rc=%t: dense shim has %d entries, want %d", name, rcOnly, len(dg), n*n)
			}
			for k, pn := range m.PortNodes {
				if dports[k] != pn {
					t.Fatalf("%s rc=%t: port %d node %d vs dense %d", name, rcOnly, k, pn, dports[k])
				}
			}
			checkExact(t, name+"/G", m.G, dg, n)
			checkExact(t, name+"/C", m.C, dc, n)
		}
	}
}

// checkExact verifies the CSR holds exactly the nonzeros of the dense
// row-major array: same pattern, same bits.
func checkExact(t *testing.T, label string, a *sparse.CSR[float64], d []float64, n int) {
	t.Helper()
	denseNNZ := 0
	for _, v := range d {
		if v != 0 {
			denseNNZ++
		}
	}
	if a.NNZ() != denseNNZ {
		t.Fatalf("%s: sparse nnz %d != dense nonzero count %d", label, a.NNZ(), denseNNZ)
	}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if got, want := a.Val[k], d[i*n+j]; got != want {
				t.Fatalf("%s: entry (%d,%d) = %g, dense %g (must be bit-identical)", label, i, j, got, want)
			}
		}
	}
}

func TestBuildDenseRefusesLargeGrids(t *testing.T) {
	cfg, err := Benchmark(Ckt5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cfg.BuildDense(); err == nil {
		t.Fatal("BuildDense must refuse million-node instances")
	}
}
