package ward

// Schur inner kernels. These run once per boundary column per solve and are
// the only per-element work the elimination adds on top of the factorization
// backends, so they are held to the same zero-allocation standard as the
// sparse triangular solves they bracket (pglint noalloc + alloctest).

// schurScatter accumulates the sparse column (rows, vals) into the dense
// right-hand side x: x[rows[k]] += vals[k]. The caller zeroes x beforehand;
// accumulation (rather than assignment) keeps duplicate row entries correct.
//
//go:noinline
//pgmor:noalloc
func schurScatter(x []float64, rows []int32, vals []float64) {
	for k, r := range rows {
		x[r] += vals[k]
	}
}

// schurGather returns the sparse·dense dot product Σ vals[k]·x[cols[k]] —
// one entry of G_KE·y for a boundary row stored as (cols, vals).
//
//go:noinline
//pgmor:noalloc
func schurGather(cols []int32, vals []float64, x []float64) float64 {
	var sum float64
	for k, c := range cols {
		sum += vals[k] * x[c]
	}
	return sum
}
