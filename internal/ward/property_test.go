package ward

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/lti"
)

// TestWardExactOnBenchmarks is the acceptance property for the pre-reduction
// stage: across every paper benchmark in both electrical variants, the
// Ward-reduced system's transfer function at the boundary ports matches the
// unreduced system's to 1e-8. RLC variants must actually eliminate states
// (the pad R–L midpoints are static); RC variants have no static states and
// must come back as exact no-ops.
func TestWardExactOnBenchmarks(t *testing.T) {
	// Scale 0.04 keeps the largest benchmark under a few thousand states so
	// the full-system (unreduced) transfer evaluation stays cheap.
	const scale = 0.04
	for _, name := range grid.Names() {
		for _, rcOnly := range []bool{false, true} {
			variant := "rlc"
			if rcOnly {
				variant = "rc"
			}
			t.Run(name+"/"+variant, func(t *testing.T) {
				cfg, err := grid.Benchmark(name, scale)
				if err != nil {
					t.Fatal(err)
				}
				cfg.RCOnly = rcOnly
				m, err := cfg.Build()
				if err != nil {
					t.Fatal(err)
				}
				sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Reduce(sys, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Fallback != "" {
					t.Fatalf("unexpected fallback: %s", res.Stats.Fallback)
				}
				if rcOnly {
					if res.Stats.External != 0 || res.Sys != sys {
						t.Fatalf("RC grid should be a no-op, eliminated %d states", res.Stats.External)
					}
				} else if res.Stats.External == 0 {
					t.Fatal("RLC grid eliminated no states; pad midpoints should be static")
				}
				nFull, _, _ := sys.Dims()
				nRed, _, _ := res.Sys.Dims()
				if nRed != nFull-res.Stats.External {
					t.Fatalf("reduced to %d states, want %d - %d", nRed, nFull, res.Stats.External)
				}
				assertTransferEqual(t, sys, res.Sys, 1e-8)
			})
		}
	}
}
