package ward

import (
	"math/cmplx"
	"testing"

	"repro/internal/grid"
	"repro/internal/lti"
	"repro/internal/sparse"
)

// chainSystem builds a hand-checkable RC fixture: a driven, observed,
// capacitive port node followed by a purely resistive chain to ground,
//
//	port(0) —R1— n1 —R2— n2 —R3— gnd,   C at node 0, I-source + probe at 0.
//
// Nodes 1 and 2 are static (no C, B, L; nonzero G row): Ward must collapse
// the chain into the port node's self-conductance 1/(R1+R2+R3) exactly.
func chainSystem(t *testing.T) *lti.SparseSystem {
	t.Helper()
	const n = 3
	gm := sparse.NewCOO[float64](n, n)
	stampR := func(a, b int, r float64) { // b < 0 means ground
		g := 1 / r
		gm.Add(a, a, -g) // paper convention G = −G_std
		if b >= 0 {
			gm.Add(b, b, -g)
			gm.Add(a, b, g)
			gm.Add(b, a, g)
		}
	}
	stampR(0, 1, 2.0)
	stampR(1, 2, 3.0)
	stampR(2, -1, 5.0)
	cm := sparse.NewCOO[float64](n, n)
	cm.Add(0, 0, 1e-12)
	bm := sparse.NewCOO[float64](n, 1)
	bm.Add(0, 0, -1)
	lm := sparse.NewCOO[float64](1, n)
	lm.Add(0, 0, 1)
	sys, err := lti.NewSparseSystem(cm.ToCSR(), gm.ToCSR(), bm.ToCSR(), lm.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPartitionChain(t *testing.T) {
	sys := chainSystem(t)
	p := PartitionSystem(sys)
	if got := []Class{p.Class[0], p.Class[1], p.Class[2]}; got[0] != ClassBoundary ||
		got[1] != ClassExternal || got[2] != ClassExternal {
		t.Fatalf("classes = %v, want [boundary external external]", got)
	}
	if len(p.Keep) != 1 || p.Keep[0] != 0 {
		t.Fatalf("Keep = %v, want [0]", p.Keep)
	}
}

func TestReduceChainExact(t *testing.T) {
	sys := chainSystem(t)
	res, err := Reduce(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.External != 2 || res.Stats.Boundary != 1 || res.Stats.Fallback != "" {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.Backend != "cholesky" {
		t.Fatalf("backend = %q, want cholesky for the symmetric resistive chain", res.Stats.Backend)
	}
	if n, _, _ := res.Sys.Dims(); n != 1 {
		t.Fatalf("reduced order %d, want 1", n)
	}
	// The collapsed chain is exactly G'[0][0] = −1/(R1+R2+R3) = −0.1.
	gv := res.Sys.G.Val
	if len(gv) != 1 || cmplxAbs(gv[0]+0.1) > 1e-14 {
		t.Fatalf("reduced G = %v, want [-0.1]", gv)
	}
	assertTransferEqual(t, sys, res.Sys, 1e-12)
}

// TestReduceStreamingMatchesDense forces the per-column streaming Schur path
// (MaxDenseBoundary below the boundary size) and checks it against the dense
// panel path on a grid with several boundary nodes.
func TestReduceStreamingMatchesDense(t *testing.T) {
	sys := rlcGrid(t)
	dense, err := Reduce(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Reduce(sys, Options{MaxDenseBoundary: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Stats.External == 0 {
		t.Fatal("fixture eliminated nothing; want a nontrivial boundary")
	}
	if dense.Stats.Solves != stream.Stats.Solves {
		t.Fatalf("solve counts differ: %d vs %d", dense.Stats.Solves, stream.Stats.Solves)
	}
	assertTransferEqual(t, dense.Sys, stream.Sys, 1e-9)
}

// rlcGrid returns a small RLC power-grid model; its pad R–L midpoint nodes
// carry no capacitance, source, or probe, so they are Ward-external.
func rlcGrid(t *testing.T) *lti.SparseSystem {
	t.Helper()
	cfg := grid.Config{Name: "ward", NX: 6, NY: 5, Layers: 2, Ports: 3, Pads: 3,
		SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 2, NodeC: 50e-15,
		PadR: 0.1, PadL: 0.5e-9, Variation: 0.2, Seed: 7}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestReduceRLCGridEliminatesPadMidpoints(t *testing.T) {
	sys := rlcGrid(t)
	res, err := Reduce(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each pad contributes one R–L midpoint node: static, hence external.
	if res.Stats.External != 3 {
		t.Fatalf("external = %d, want 3 (one pad midpoint per pad)", res.Stats.External)
	}
	if res.Stats.Fallback != "" {
		t.Fatalf("unexpected fallback: %s", res.Stats.Fallback)
	}
	assertTransferEqual(t, sys, res.Sys, 1e-10)
}

func TestReduceRCGridIsNoOp(t *testing.T) {
	cfg := grid.Config{Name: "rc", NX: 5, NY: 5, Layers: 1, Ports: 2, Pads: 2,
		SheetR: 0.05, LayerRScale: 2, ViaR: 0.5, ViaPitch: 2, NodeC: 50e-15,
		PadR: 0.1, PadL: 0.5e-9, Seed: 3, RCOnly: true}
	m, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(m.C, m.G, m.B, m.L)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reduce(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every RC node carries a capacitance, so nothing is static.
	if res.Stats.External != 0 || res.Stats.Backend != "none" {
		t.Fatalf("stats = %+v, want no elimination", res.Stats)
	}
	if res.Sys != sys {
		t.Fatal("no-op reduction must alias the input system")
	}
}

// TestReduceSingularExternalFallsBack: a static state whose G row has no
// diagonal path yields a singular external block; Reduce must hand back the
// input unchanged with the fallback recorded instead of failing.
func TestReduceSingularExternalFallsBack(t *testing.T) {
	const n = 2
	gm := sparse.NewCOO[float64](n, n)
	gm.Add(0, 0, -1)
	gm.Add(0, 1, 1)
	gm.Add(1, 0, 1) // external row: off-diagonal only → N = [0], singular
	cm := sparse.NewCOO[float64](n, n)
	cm.Add(0, 0, 1e-12)
	bm := sparse.NewCOO[float64](n, 1)
	bm.Add(0, 0, -1)
	lm := sparse.NewCOO[float64](1, n)
	lm.Add(0, 0, 1)
	sys, err := lti.NewSparseSystem(cm.ToCSR(), gm.ToCSR(), bm.ToCSR(), lm.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reduce(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fallback == "" {
		t.Fatal("want a fallback reason for the singular external block")
	}
	if res.Sys != sys {
		t.Fatal("fallback must alias the input system")
	}
}

// assertTransferEqual compares full transfer matrices of two systems over a
// wide frequency sweep, with relative tolerance tol.
func assertTransferEqual(t *testing.T, want, got *lti.SparseSystem, tol float64) {
	t.Helper()
	_, m, p := want.Dims()
	_, m2, p2 := got.Dims()
	if m != m2 || p != p2 {
		t.Fatalf("port dims differ: %d/%d vs %d/%d", m, p, m2, p2)
	}
	for _, w := range []float64{0, 1e5, 1e8, 3e9, 1e11} {
		s := complex(0, w)
		h1, err := want.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := got.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p; i++ {
			for j := 0; j < m; j++ {
				if d := cmplx.Abs(h1.At(i, j) - h2.At(i, j)); d > tol*(1+cmplx.Abs(h1.At(i, j))) {
					t.Fatalf("ω=%g: H[%d][%d] differs by %g: %v vs %v", w, i, j, d, h1.At(i, j), h2.At(i, j))
				}
			}
		}
	}
}

func cmplxAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
