// Package ward implements Ward/boundary-set pre-reduction for huge sparse
// descriptor systems: the states of C dx/dt = Gx + Bu, y = Lx are
// partitioned into an external set (purely static, unobserved, undriven),
// the boundary set (kept states coupled to an external), and the internal
// remainder; the externals are then eliminated exactly by a sparse Schur
// complement on G,
//
//	G' = G_KK − G_KE · G_EE⁻¹ · G_EK   (K = internal ∪ boundary),
//
// the classical Ward equivalent of power-system analysis (GridCal's
// ward_reduction is the reference implementation of record). Because an
// external state has no entry in C, B, or L, its pencil rows are
// frequency-independent and the elimination is exact: the reduced system has
// the same transfer matrix H(s) at every port and every frequency, up to the
// roundoff of the Schur solves. Model order reduction downstream (BDSM
// Krylov projection) then runs on the kept states only, so reduction cost
// scales with the dynamic/observed part of the grid instead of the full
// netlist — the enabler for million-node multiscale grids whose bulk is a
// static transmission backbone.
package ward

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/lti"
	"repro/internal/sparse"
)

// Class labels one state of the partition.
type Class int8

const (
	// ClassInternal states are kept and touch no external state.
	ClassInternal Class = iota
	// ClassBoundary states are kept and G-coupled to at least one external;
	// the Schur correction is confined to boundary rows and columns.
	ClassBoundary
	// ClassExternal states are static (no C, B, or L entries) and are
	// eliminated exactly.
	ClassExternal
)

func (c Class) String() string {
	switch c {
	case ClassInternal:
		return "internal"
	case ClassBoundary:
		return "boundary"
	case ClassExternal:
		return "external"
	}
	return "unknown"
}

// Partition is the internal/boundary/external split of a system's states.
type Partition struct {
	// Class holds the per-state classification, indexed by original state.
	Class []Class
	// External lists eliminated states in ascending original order.
	External []int
	// Boundary lists kept states adjacent to an external, ascending.
	Boundary []int
	// Keep lists all kept states (internal + boundary) in ascending original
	// order; Keep[i] is the original index of reduced state i.
	Keep []int
}

// PartitionSystem classifies every state of sys. A state is external when it
// is provably static and eliminable:
//
//   - its C row and column are empty (no dynamics couple through it),
//   - its B row is empty (no input drives it) and its L column is empty
//     (no output observes it),
//   - its G row is nonempty (a fully decoupled state has a singular
//     external block and nothing to eliminate; it stays kept and inert).
//
// Kept states with a G entry to or from an external state are boundary;
// the rest are internal. The classification is purely structural, so it is
// O(nnz) and never misclassifies: anything not provably static is kept.
func PartitionSystem(sys *lti.SparseSystem) *Partition {
	n, _, _ := sys.Dims()
	class := make([]Class, n)
	static := make([]bool, n)
	for i := range static {
		static[i] = true
	}
	// Dynamic couplings: any C entry keeps both its row and column state.
	for i := 0; i < n; i++ {
		if sys.C.RowPtr[i+1] > sys.C.RowPtr[i] {
			static[i] = false
		}
		for k := sys.C.RowPtr[i]; k < sys.C.RowPtr[i+1]; k++ {
			static[sys.C.ColIdx[k]] = false
		}
	}
	// Driven states: B rows.
	for k := range sys.B.RowIdx {
		static[sys.B.RowIdx[k]] = false
	}
	// Observed states: L columns.
	for k := range sys.L.ColIdx {
		static[sys.L.ColIdx[k]] = false
	}
	// Degenerate statics with an empty G row stay kept (inert but harmless).
	for i := 0; i < n; i++ {
		if static[i] && sys.G.RowPtr[i+1] == sys.G.RowPtr[i] {
			static[i] = false
		}
	}

	p := &Partition{Class: class}
	for i := 0; i < n; i++ {
		if static[i] {
			class[i] = ClassExternal
			p.External = append(p.External, i)
		}
	}
	if len(p.External) > 0 {
		// Boundary marking walks G once in each direction so structurally
		// unsymmetric couplings (inductor incidence rows) are caught too.
		for i := 0; i < n; i++ {
			for k := sys.G.RowPtr[i]; k < sys.G.RowPtr[i+1]; k++ {
				j := sys.G.ColIdx[k]
				switch {
				case class[i] == ClassExternal && class[j] != ClassExternal:
					class[j] = ClassBoundary
				case class[i] != ClassExternal && class[j] == ClassExternal:
					class[i] = ClassBoundary
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		switch class[i] {
		case ClassBoundary:
			p.Boundary = append(p.Boundary, i)
			p.Keep = append(p.Keep, i)
		case ClassInternal:
			p.Keep = append(p.Keep, i)
		}
	}
	return p
}

// Options configures a Ward reduction.
type Options struct {
	// LU sets the fill-reducing ordering and pivot tolerance of the external
	// factorization. The zero value selects AMD ordering, the right default
	// for mesh-like grids.
	LU sparse.LUOptions
	// Workers bounds concurrent Schur solves; 0 means GOMAXPROCS. Columns of
	// the correction are independent, so the solve phase is embarrassingly
	// parallel like BDSM's splitted systems.
	Workers int
	// MaxDenseBoundary caps the boundary size for which the Schur correction
	// is accumulated in a dense |B|×|B| panel (enabling symmetrization of a
	// symmetric input's correction). Larger boundaries stream per-column
	// without symmetrization. 0 selects DefaultMaxDenseBoundary.
	MaxDenseBoundary int
}

// DefaultMaxDenseBoundary bounds the dense Schur accumulation panel to
// 4096² float64 (128 MiB).
const DefaultMaxDenseBoundary = 4096

// Stats reports the measured shape and cost of a Ward reduction.
type Stats struct {
	// N is the original state count; External/Boundary/Internal partition it.
	N        int `json:"n"`
	External int `json:"external"`
	Boundary int `json:"boundary"`
	Internal int `json:"internal"`
	// Solves counts Schur solves (one per boundary column with external
	// coupling).
	Solves int `json:"solves"`
	// FactorNNZ is the fill of the external factorization.
	FactorNNZ int `json:"factor_nnz"`
	// CorrectionNNZ counts nonzeros of the Schur correction stamped into G'.
	CorrectionNNZ int `json:"correction_nnz"`
	// Backend names the external factorization used: "cholesky", "lu", or
	// "none" when nothing was eliminated.
	Backend string `json:"backend"`
	// Fallback carries the reason elimination was skipped (singular external
	// block); empty on success. A fallback result aliases the input system
	// unchanged, so it is always safe to use.
	Fallback string `json:"fallback,omitempty"`
	// PartitionTime and SchurTime split the wall clock of the two phases.
	PartitionTime time.Duration `json:"partition_ns"`
	SchurTime     time.Duration `json:"schur_ns"`
}

// Result is a completed Ward reduction.
type Result struct {
	// Sys is the reduced descriptor system over the kept states. When
	// nothing was eliminated it aliases the input system.
	Sys *lti.SparseSystem
	// Part is the partition the reduction applied.
	Part *Partition
	// Stats reports elimination shape and cost.
	Stats Stats
}

// Reduce partitions sys and eliminates its external states by a sparse Schur
// complement. The reduction is exact: Result.Sys has the same transfer
// matrix as sys at every frequency (up to solve roundoff). When no state
// qualifies as external — or the external block is numerically singular —
// the input system is returned unchanged with Stats.Fallback set, so Reduce
// is always safe to call unconditionally.
func Reduce(sys *lti.SparseSystem, opts Options) (*Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxDenseBoundary <= 0 {
		opts.MaxDenseBoundary = DefaultMaxDenseBoundary
	}
	n, _, _ := sys.Dims()

	tPart := time.Now()
	part := PartitionSystem(sys)
	res := &Result{Sys: sys, Part: part}
	res.Stats = Stats{
		N:        n,
		External: len(part.External),
		Boundary: len(part.Boundary),
		Internal: len(part.Keep) - len(part.Boundary),
		Backend:  "none",
	}
	res.Stats.PartitionTime = time.Since(tPart)
	if len(part.External) == 0 {
		return res, nil
	}

	tSchur := time.Now()
	err := schurEliminate(sys, part, opts, res)
	res.Stats.SchurTime = time.Since(tSchur)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// schurSolver is the minimal scratch-buffered solve surface shared by the
// Cholesky and LU external factorizations.
type schurSolver interface {
	SolveBuf(dst, b, w []float64)
	NNZ() int
}

// luSolver adapts sparse.LU's error-free SolveBuf signature.
type luSolver struct{ lu *sparse.LU[float64] }

func (s luSolver) SolveBuf(dst, b, w []float64) { s.lu.SolveBuf(dst, b, w) }
func (s luSolver) NNZ() int                     { return s.lu.NNZ() }

// cholSolver adapts sparse.Cholesky.
type cholSolver struct{ ch *sparse.Cholesky }

func (s cholSolver) SolveBuf(dst, b, w []float64) { s.ch.SolveBuf(dst, b, w) }
func (s cholSolver) NNZ() int                     { return s.ch.NNZ() }

// schurEliminate performs the elimination proper, filling res.Sys and the
// Schur fields of res.Stats. On a singular external block it records a
// fallback (res keeps aliasing the input) and returns nil; only structural
// impossibilities return an error.
func schurEliminate(sys *lti.SparseSystem, part *Partition, opts Options, res *Result) error {
	n, m, p := sys.Dims()
	nE, nK, nB := len(part.External), len(part.Keep), len(part.Boundary)

	// Index maps original → position in E / K, and boundary → dense slot.
	extIdx := make([]int32, n)
	keepIdx := make([]int32, n)
	for i := range extIdx {
		extIdx[i] = -1
		keepIdx[i] = -1
	}
	for e, i := range part.External {
		extIdx[i] = int32(e)
	}
	for k, i := range part.Keep {
		keepIdx[i] = int32(k)
	}
	bSlot := make([]int32, nK) // kept index → boundary slot, -1 for internal
	for i := range bSlot {
		bSlot[i] = -1
	}
	for b, i := range part.Boundary {
		bSlot[keepIdx[i]] = int32(b)
	}

	// Split G into the four blocks the Schur complement needs. N = −G_EE is
	// assembled directly (paper convention G = −G_std makes N the standard
	// SPD conductance block for resistive externals). G_EK is built in
	// column-compressed form over boundary columns; G_KE in row-compressed
	// form over boundary rows; G_KK goes straight into the output COO.
	g := sys.G
	nnzEE, nnzEK, nnzKE, nnzKK := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		rowExt := extIdx[i] >= 0
		for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
			colExt := extIdx[g.ColIdx[k]] >= 0
			switch {
			case rowExt && colExt:
				nnzEE++
			case rowExt:
				nnzEK++
			case colExt:
				nnzKE++
			default:
				nnzKK++
			}
		}
	}
	negEE := sparse.NewCOO[float64](nE, nE)
	negEE.Reserve(nnzEE)
	gOut := sparse.NewCOO[float64](nK, nK)
	gOut.Reserve(nnzKK + nB*nB)

	// G_EK columns: count → prefix → fill, CSC over the kept index space.
	ekPtr := make([]int, nK+1)
	ekRow := make([]int32, nnzEK)
	ekVal := make([]float64, nnzEK)
	// G_KE rows over boundary slots: keRowPtr[b]..keRowPtr[b+1] spans row b.
	kePtr := make([]int, nB+1)
	keCol := make([]int32, nnzKE)
	keVal := make([]float64, nnzKE)

	for i := 0; i < n; i++ {
		if extIdx[i] >= 0 {
			for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
				if kj := keepIdx[g.ColIdx[k]]; kj >= 0 {
					ekPtr[kj+1]++
				}
			}
		} else {
			b := bSlot[keepIdx[i]]
			for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
				if extIdx[g.ColIdx[k]] >= 0 {
					if b < 0 {
						return fmt.Errorf("ward: internal state %d has external coupling; partition is inconsistent", i)
					}
					kePtr[b+1]++
				}
			}
		}
	}
	for k := 0; k < nK; k++ {
		ekPtr[k+1] += ekPtr[k]
	}
	for b := 0; b < nB; b++ {
		kePtr[b+1] += kePtr[b]
	}
	ekFill := make([]int, nK)
	copy(ekFill, ekPtr[:nK])
	keFill := make([]int, nB)
	copy(keFill, kePtr[:nB])
	for i := 0; i < n; i++ {
		ki := keepIdx[i]
		if e := extIdx[i]; e >= 0 {
			for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
				j := g.ColIdx[k]
				if ej := extIdx[j]; ej >= 0 {
					negEE.Add(int(e), int(ej), -g.Val[k])
				} else if kj := keepIdx[j]; kj >= 0 {
					ekRow[ekFill[kj]] = e
					ekVal[ekFill[kj]] = g.Val[k]
					ekFill[kj]++
				}
			}
		} else {
			b := bSlot[ki]
			for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
				j := g.ColIdx[k]
				if ej := extIdx[j]; ej >= 0 {
					keCol[keFill[b]] = ej
					keVal[keFill[b]] = g.Val[k]
					keFill[b]++
				} else {
					gOut.Add(int(ki), int(keepIdx[j]), g.Val[k])
				}
			}
		}
	}

	// Factor N = −G_EE: Cholesky when the block is symmetric (the resistive
	// common case — half the work and fill of LU), LU otherwise or when the
	// block is indefinite. A singular block means some external island has
	// no path to ground or boundary; elimination is then impossible and the
	// caller gets the input back unchanged.
	eeCSR := negEE.ToCSR()
	var solver schurSolver
	backend := "lu"
	if sparse.IsSymmetric(eeCSR, 1e-12) {
		if ch, err := sparse.FactorCholesky(eeCSR.ToCSC(), opts.LU); err == nil {
			solver = cholSolver{ch}
			backend = "cholesky"
		}
	}
	if solver == nil {
		lu, err := sparse.FactorLU(eeCSR.ToCSC(), opts.LU)
		if err != nil {
			res.Stats.Fallback = fmt.Sprintf("external block singular: %v", err)
			res.Stats.Backend = "none"
			return nil
		}
		solver = luSolver{lu}
	}
	res.Stats.Backend = backend
	res.Stats.FactorNNZ = solver.NNZ()

	// Schur solves: one per boundary column with external coupling. The
	// correction −G_KE·N⁻¹·G_EK is nonzero only on boundary rows × boundary
	// columns. Columns are independent → sharded across workers. When the
	// boundary is small enough the correction accumulates into a dense
	// |B|×|B| panel so a symmetric input can be symmetrized exactly;
	// otherwise each column is stamped as computed.
	useDense := nB <= opts.MaxDenseBoundary
	var corr []float64
	if useDense {
		corr = make([]float64, nB*nB)
	}
	var mu sync.Mutex // guards gOut in the streaming (non-dense) path
	solves := 0
	type colJob struct{ kj, b int32 }
	jobs := make([]colJob, 0, nB)
	for b, i := range part.Boundary {
		kj := keepIdx[i]
		if ekPtr[kj+1] > ekPtr[kj] {
			jobs = append(jobs, colJob{kj, int32(b)})
			solves++
		}
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := make([]float64, nE)
			scratch := make([]float64, nE)
			delta := make([]float64, nB)
			for idx := range next {
				job := jobs[idx]
				kj, b := int(job.kj), int(job.b)
				sparse.ZeroVec(x)
				schurScatter(x, ekRow[ekPtr[kj]:ekPtr[kj+1]], ekVal[ekPtr[kj]:ekPtr[kj+1]])
				solver.SolveBuf(x, x, scratch)
				// delta[bi] = (G_KE · y)[bi] over boundary rows; with the
				// paper's G = −G_std sign, the external rows give
				// x_E = N⁻¹·G_EK·x_K, so delta adds into G'.
				for bi := 0; bi < nB; bi++ {
					delta[bi] = schurGather(keCol[kePtr[bi]:kePtr[bi+1]], keVal[kePtr[bi]:kePtr[bi+1]], x)
				}
				if useDense {
					col := corr[b*nB : (b+1)*nB]
					copy(col, delta)
					continue
				}
				mu.Lock()
				for bi := 0; bi < nB; bi++ {
					if delta[bi] != 0 {
						gOut.Add(int(keepIdx[part.Boundary[bi]]), kj, delta[bi])
					}
				}
				mu.Unlock()
			}
		}()
	}
	for idx := range jobs {
		next <- idx
	}
	close(next)
	wg.Wait()
	res.Stats.Solves = solves

	if useDense {
		// A symmetric G yields a symmetric correction in exact arithmetic;
		// averaging restores the symmetry the independent solves lose to
		// roundoff, keeping the reduced pencil eligible for Cholesky.
		if sparse.IsSymmetric(g, 1e-12) {
			for b := 0; b < nB; b++ {
				for bi := 0; bi < b; bi++ {
					avg := (corr[b*nB+bi] + corr[bi*nB+b]) / 2
					corr[b*nB+bi] = avg
					corr[bi*nB+b] = avg
				}
			}
		}
		for b := 0; b < nB; b++ {
			kj := int(keepIdx[part.Boundary[b]])
			for bi := 0; bi < nB; bi++ {
				if v := corr[b*nB+bi]; v != 0 {
					gOut.Add(int(keepIdx[part.Boundary[bi]]), kj, v)
					res.Stats.CorrectionNNZ++
				}
			}
		}
	} else {
		res.Stats.CorrectionNNZ = gOut.NNZ() - nnzKK
	}

	// Restrict C, B, L to the kept states. External rows and columns are
	// empty there by construction of the partition, so this is a pure
	// reindexing.
	cOut := sparse.NewCOO[float64](nK, nK)
	cOut.Reserve(sys.C.NNZ())
	for i := 0; i < n; i++ {
		ki := keepIdx[i]
		if ki < 0 {
			continue
		}
		for k := sys.C.RowPtr[i]; k < sys.C.RowPtr[i+1]; k++ {
			cOut.Add(int(ki), int(keepIdx[sys.C.ColIdx[k]]), sys.C.Val[k])
		}
	}
	bOut := sparse.NewCOO[float64](nK, m)
	bOut.Reserve(sys.B.NNZ())
	for j := 0; j < m; j++ {
		for k := sys.B.ColPtr[j]; k < sys.B.ColPtr[j+1]; k++ {
			bOut.Add(int(keepIdx[sys.B.RowIdx[k]]), j, sys.B.Val[k])
		}
	}
	lOut := sparse.NewCOO[float64](p, nK)
	lOut.Reserve(sys.L.NNZ())
	for i := 0; i < p; i++ {
		for k := sys.L.RowPtr[i]; k < sys.L.RowPtr[i+1]; k++ {
			lOut.Add(i, int(keepIdx[sys.L.ColIdx[k]]), sys.L.Val[k])
		}
	}

	reduced, err := lti.NewSparseSystem(cOut.ToCSR(), gOut.ToCSR(), bOut.ToCSR(), lOut.ToCSR())
	if err != nil {
		return fmt.Errorf("ward: assembling reduced system: %w", err)
	}
	res.Sys = reduced
	return nil
}
