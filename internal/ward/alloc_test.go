package ward

import "testing"

// The Schur inner kernels run once per boundary column per solve; like the
// triangular solves they bracket, they must not allocate.

//pgmor:alloctest schurScatter
func TestSchurScatterAllocs(t *testing.T) {
	x := make([]float64, 64)
	rows := []int32{1, 5, 9, 33, 5}
	vals := []float64{0.5, -1, 2, 3, 0.25}
	allocs := testing.AllocsPerRun(100, func() {
		schurScatter(x, rows, vals)
	})
	if allocs != 0 {
		t.Fatalf("schurScatter allocates %.1f times per call, want 0", allocs)
	}
	if x[5] == 0 {
		t.Fatal("scatter did not accumulate")
	}
}

//pgmor:alloctest schurGather
func TestSchurGatherAllocs(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i)
	}
	cols := []int32{3, 7, 11}
	vals := []float64{1, -2, 0.5}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink = schurGather(cols, vals, x)
	})
	if allocs != 0 {
		t.Fatalf("schurGather allocates %.1f times per call, want 0", allocs)
	}
	if want := 3.0 - 14.0 + 5.5; sink != want {
		t.Fatalf("gather = %g, want %g", sink, want)
	}
}
