// Package param is the parametric Δ-scale interpolation operator over the
// modal ROM library (per Safaee–Gugercin, Structure-preserving Model
// Reduction of Parametric Power Networks): given block-diagonal modal ROMs
// of the same benchmark reduced at two neighboring Scale points, it matches
// poles per block across the anchors (nearest neighbor in the complex plane,
// with ambiguity and stability guards), interpolates matched poles and
// residues linearly in log-Scale, and realizes the interpolated pole–residue
// data back into a real BlockDiagSystem — so the result is a first-class ROM
// the serving layer can evaluate, sweep, simulate, and cache exactly like a
// reduced one, at interpolation cost (O(model size)) instead of reduction
// cost (Krylov + orthonormalization over the full grid).
//
// The operator is deliberately conservative: anchors must have identical
// block structure and full modal coverage, every pole must find an
// unambiguous partner within a bounded relative shift, and the interpolated
// set must stay conjugate-closed and stable. Any violation returns an error
// tagged ErrIncompatible or ErrAmbiguous, which the serving layer treats as
// "fall back to a real reduction" — interpolation is an optimization, never
// a correctness risk.
package param

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dense"
	"repro/internal/lti"
)

// ErrIncompatible reports anchors whose ROMs cannot be interpolated at all:
// mismatched dimensions, block structure, modal coverage, or pole counts.
var ErrIncompatible = errors.New("param: anchors are not interpolation-compatible")

// ErrAmbiguous reports that pole matching between the anchors is not
// trustworthy: a pole moved farther than the guard allows, two poles contend
// for one partner, or the interpolated set lost conjugate closure. The caller
// should reduce directly instead.
var ErrAmbiguous = errors.New("param: pole matching is ambiguous")

// Config tunes the interpolation guards. The zero value selects defaults.
type Config struct {
	// MaxPoleShift bounds the relative distance |λa−λb| / max(|λa|,|λb|)
	// a matched pole pair may span; beyond it the anchors are too far apart
	// to trust a linear pole path. 0 selects DefaultMaxPoleShift.
	MaxPoleShift float64
	// StabTol is the relative positive real part above which an interpolated
	// pole counts as unstable (mirrors the modal construction guard).
	// 0 selects 1e-8.
	StabTol float64
}

// DefaultMaxPoleShift permits matched poles to move by up to 75% of their
// magnitude between anchors — generous for within-plateau Δ-scale steps
// (poles move ∝ scale³ there) while rejecting matchings that pair unrelated
// poles across a grid re-randomization.
const DefaultMaxPoleShift = 0.75

func (c *Config) defaults() {
	if c.MaxPoleShift <= 0 {
		c.MaxPoleShift = DefaultMaxPoleShift
	}
	if c.StabTol <= 0 {
		c.StabTol = 1e-8
	}
}

// Anchor is one stored library point: a fully evaluable modal ROM at a known
// Scale.
type Anchor struct {
	Scale float64
	Modal *lti.ModalSystem
}

// Report describes how an interpolant was produced — the serving layer
// surfaces it so operators can see what a Δ-scale request actually did.
type Report struct {
	// Scales are the anchor scales used, ascending; T is the interpolation
	// coordinate in log-Scale (0 at Scales[0], 1 at Scales[1]).
	Scales [2]float64 `json:"scales"`
	T      float64    `json:"t"`
	// MatchedPoles counts pole pairs matched across the anchors;
	// MaxPoleShift is the largest relative distance any matched pair spans.
	MatchedPoles int     `json:"matched_poles"`
	MaxPoleShift float64 `json:"max_pole_shift"`
}

// Interpolate builds the ROM at the requested scale from two anchors
// bracketing it. The result carries a full modal form (every block Modal)
// and a real block-diagonal realization of exactly that form, so modal and
// factored evaluation paths agree to machine precision.
func Interpolate(a, b Anchor, scale float64, cfg Config) (*lti.ModalSystem, *Report, error) {
	cfg.defaults()
	if a.Scale > b.Scale {
		a, b = b, a
	}
	if !(a.Scale > 0) || !(b.Scale > a.Scale) {
		return nil, nil, fmt.Errorf("%w: anchor scales %g, %g", ErrIncompatible, a.Scale, b.Scale)
	}
	if scale < a.Scale || scale > b.Scale {
		return nil, nil, fmt.Errorf("%w: scale %g outside anchor range [%g, %g] (no extrapolation)",
			ErrIncompatible, scale, a.Scale, b.Scale)
	}
	if err := compatible(a.Modal, b.Modal); err != nil {
		return nil, nil, err
	}
	// Log-scale interpolation coordinate: pole trajectories of the scaled
	// electrical family are power laws in scale, which are linear in
	// log-scale — the coordinate where a two-point chord is most accurate.
	t := (math.Log(scale) - math.Log(a.Scale)) / (math.Log(b.Scale) - math.Log(a.Scale))

	rep := &Report{Scales: [2]float64{a.Scale, b.Scale}, T: t}
	_, m, p := a.Modal.Dims()
	blocks := make([]lti.ModalBlock, len(a.Modal.Blocks))
	for i := range a.Modal.Blocks {
		mb, err := interpolateBlock(&a.Modal.Blocks[i], &b.Modal.Blocks[i], t, &cfg, rep)
		if err != nil {
			return nil, nil, fmt.Errorf("block %d: %w", i, err)
		}
		blocks[i] = mb
	}
	ms, err := Realize(blocks, m, p)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: realization: %v", ErrAmbiguous, err)
	}
	return ms, rep, nil
}

// compatible rejects anchor pairs whose ROMs do not share the structure the
// per-block matching assumes.
func compatible(a, b *lti.ModalSystem) error {
	if a == nil || b == nil {
		return fmt.Errorf("%w: missing modal form", ErrIncompatible)
	}
	an, am, ap := a.Dims()
	bn, bm, bp := b.Dims()
	if am != bm || ap != bp {
		return fmt.Errorf("%w: I/O dims %d×%d vs %d×%d", ErrIncompatible, ap, am, bp, bm)
	}
	if an != bn || len(a.Blocks) != len(b.Blocks) {
		return fmt.Errorf("%w: order/blocks %d/%d vs %d/%d", ErrIncompatible, an, len(a.Blocks), bn, len(b.Blocks))
	}
	for i := range a.Blocks {
		ba, bb := &a.Blocks[i], &b.Blocks[i]
		if !ba.Modal || !bb.Modal {
			return fmt.Errorf("%w: block %d lacks a modal form in one anchor", ErrIncompatible, i)
		}
		if ba.Input != bb.Input {
			return fmt.Errorf("%w: block %d drives input %d vs %d", ErrIncompatible, i, ba.Input, bb.Input)
		}
		if len(ba.Poles) != len(bb.Poles) {
			return fmt.Errorf("%w: block %d has %d vs %d poles", ErrIncompatible, i, len(ba.Poles), len(bb.Poles))
		}
		if (ba.D == nil) != (bb.D == nil) {
			return fmt.Errorf("%w: block %d carries a direct term in only one anchor", ErrIncompatible, i)
		}
	}
	return nil
}

// interpolateBlock matches block b's poles to block a's and blends poles,
// residues, and direct terms at coordinate t.
func interpolateBlock(a, b *lti.ModalBlock, t float64, cfg *Config, rep *Report) (lti.ModalBlock, error) {
	match, worst, err := matchPoles(a.Poles, b.Poles, cfg.MaxPoleShift)
	if err != nil {
		return lti.ModalBlock{}, err
	}
	rep.MatchedPoles += len(match)
	if worst > rep.MaxPoleShift {
		rep.MaxPoleShift = worst
	}
	q, p := len(a.Poles), a.R.Cols
	poles := make([]complex128, q)
	r := dense.NewMat[complex128](q, p)
	ct := complex(t, 0)
	for k := 0; k < q; k++ {
		lam := (1-ct)*a.Poles[k] + ct*b.Poles[match[k]]
		if real(lam) > cfg.StabTol*(1+cmplx.Abs(lam)) {
			return lti.ModalBlock{}, fmt.Errorf("%w: interpolated pole %v is unstable", ErrAmbiguous, lam)
		}
		poles[k] = lam
		ra, rb := a.R.Row(k), b.R.Row(match[k])
		dst := r.Row(k)
		for c := range dst {
			dst[c] = (1-ct)*ra[c] + ct*rb[c]
		}
	}
	var d []complex128
	if a.D != nil {
		d = make([]complex128, p)
		for c := range d {
			d[c] = (1-ct)*a.D[c] + ct*b.D[c]
		}
	}
	return lti.ModalBlock{Input: a.Input, Modal: true, Sym: a.Sym && b.Sym, Poles: poles, R: r, D: d}, nil
}

// MaxRelTransferErr is the worst Frobenius-relative transfer-matrix error
// between two systems over the frequency grid — the metric every
// interpolation budget in this repo (serving admission, benchmarks, tests)
// is expressed in, kept in one place so they all measure the same quantity.
func MaxRelTransferErr(a, b *lti.ModalSystem, omegas []float64) (float64, error) {
	var worst float64
	for _, w := range omegas {
		s := complex(0, w)
		ha, err := a.Eval(s)
		if err != nil {
			return 0, err
		}
		hb, err := b.Eval(s)
		if err != nil {
			return 0, err
		}
		var num, den float64
		for i := range ha.Data {
			num += sqAbs(ha.Data[i] - hb.Data[i])
			den += sqAbs(hb.Data[i])
		}
		if den == 0 {
			den = 1
		}
		if e := math.Sqrt(num / den); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// matchPoles pairs each pole of a with a distinct pole of b by globally
// greedy nearest-neighbor assignment: the closest unmatched pair is locked
// first, so a pole can never steal a partner that another pole is strictly
// closer to. Returns the permutation (match[i] is the index in b paired with
// a[i]) and the worst relative shift. Pairs farther apart than maxShift
// relative to their magnitude are ErrAmbiguous — the anchors are too far
// apart (or structurally unrelated) for a linear pole path.
func matchPoles(a, b []complex128, maxShift float64) ([]int, float64, error) {
	q := len(a)
	match := make([]int, q)
	usedA := make([]bool, q)
	usedB := make([]bool, q)
	var worst float64
	for n := 0; n < q; n++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < q; i++ {
			if usedA[i] {
				continue
			}
			for j := 0; j < q; j++ {
				if usedB[j] {
					continue
				}
				if d := cmplx.Abs(a[i] - b[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		mag := math.Max(cmplx.Abs(a[bi]), cmplx.Abs(b[bj]))
		if mag == 0 {
			mag = 1
		}
		shift := best / mag
		if shift > maxShift {
			return nil, 0, fmt.Errorf("%w: pole %v ↔ %v moved %.2f× its magnitude (guard %.2f)",
				ErrAmbiguous, a[bi], b[bj], shift, maxShift)
		}
		if shift > worst {
			worst = shift
		}
		match[bi] = bj
		usedA[bi], usedB[bj] = true, true
	}
	return match, worst, nil
}
