package param

import (
	"errors"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/grid"
	"repro/internal/lti"
	"repro/internal/sim"
)

// buildModal reduces one benchmark instance and diagonalizes it.
func buildModal(t *testing.T, name string, scale float64, rcOnly bool) *lti.ModalSystem {
	t.Helper()
	cfg, err := grid.Benchmark(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RCOnly = rcOnly
	gm, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lti.NewSparseSystem(gm.C, gm.G, gm.B, gm.L)
	if err != nil {
		t.Fatal(err)
	}
	rom, err := core.Reduce(sys, core.Options{Moments: grid.MatchedMoments(name)})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := rom.Modalize()
	if err != nil {
		t.Fatal(err)
	}
	if m, f := ms.ModalCount(); f != 0 {
		t.Fatalf("%s@%g rc=%v: %d of %d blocks not modal", name, scale, rcOnly, f, m+f)
	}
	return ms
}

// maxRelErr wraps MaxRelTransferErr for tests.
func maxRelErr(t *testing.T, a, b *lti.ModalSystem, omegas []float64) float64 {
	t.Helper()
	e, err := MaxRelTransferErr(a, b, omegas)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Interpolating between two anchors inside one grid-size plateau must land
// within a tight budget of the direct reduction at the held-out scale —
// the continuous electrical scaling is the only thing varying there. Both
// the RLC (complex pole pairs) and RC (real poles) families are exercised.
func TestInterpolateMatchesDirectReductionWithinPlateau(t *testing.T) {
	// ckt1: NX plateau [18/77, 19/77) ≈ [0.2338, 0.2468), ports plateau
	// [12/51, 13/51) ≈ [0.2353, 0.2549); the intersection holds all three
	// scales, so only SheetR/NodeC vary.
	const s0, target, s1 = 0.236, 0.241, 0.246
	omegas, err := sim.LogGrid(1e5, 1e15, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, rcOnly := range []bool{false, true} {
		a := Anchor{Scale: s0, Modal: buildModal(t, "ckt1", s0, rcOnly)}
		b := Anchor{Scale: s1, Modal: buildModal(t, "ckt1", s1, rcOnly)}
		direct := buildModal(t, "ckt1", target, rcOnly)

		ms, rep, err := Interpolate(a, b, target, Config{})
		if err != nil {
			t.Fatalf("rc=%v: %v", rcOnly, err)
		}
		if rep.MatchedPoles == 0 || rep.MaxPoleShift <= 0 {
			t.Fatalf("rc=%v: degenerate report %+v", rcOnly, rep)
		}
		if e := maxRelErr(t, ms, direct, omegas); e > 0.02 {
			t.Errorf("rc=%v: interpolant vs direct reduction: rel err %g > 0.02", rcOnly, e)
		}
	}
}

// At an anchor scale the interpolant must reproduce the anchor itself.
func TestInterpolateExactAtAnchors(t *testing.T) {
	const s0, s1 = 0.236, 0.246
	a := Anchor{Scale: s0, Modal: buildModal(t, "ckt1", s0, true)}
	b := Anchor{Scale: s1, Modal: buildModal(t, "ckt1", s1, true)}
	omegas, _ := sim.LogGrid(1e5, 1e15, 13)
	for _, tc := range []struct {
		scale float64
		ref   *lti.ModalSystem
	}{{s0, a.Modal}, {s1, b.Modal}} {
		ms, _, err := Interpolate(a, b, tc.scale, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if e := maxRelErr(t, ms, tc.ref, omegas); e > 1e-6 {
			t.Errorf("scale %g: endpoint error %g", tc.scale, e)
		}
	}
}

// The realized state-space face must agree with the modal face — the
// property that lets the factored path and transient integrators serve the
// interpolant unchanged.
func TestRealizationAgreesWithModalForm(t *testing.T) {
	const s0, s1 = 0.236, 0.246
	a := Anchor{Scale: s0, Modal: buildModal(t, "ckt1", s0, false)}
	b := Anchor{Scale: s1, Modal: buildModal(t, "ckt1", s1, false)}
	ms, _, err := Interpolate(a, b, 0.24, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	if mc, fb := ms.ModalCount(); fb != 0 || mc != len(ms.Blocks) {
		t.Fatalf("interpolant not fully modal: %d/%d", mc, mc+fb)
	}
	for _, w := range []float64{1e6, 1e9, 1e12, 1e14} {
		s := complex(0, w)
		hm, err := ms.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := ms.BD.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hm.Data {
			if d := cmplx.Abs(hm.Data[i] - hb.Data[i]); d > 1e-8*(1+cmplx.Abs(hb.Data[i])) {
				t.Fatalf("ω=%g entry %d: modal %v vs realized %v", w, i, hm.Data[i], hb.Data[i])
			}
		}
	}
}

// synthModal builds a hand-written fully-modal single-input system.
func synthModal(poles []complex128, res [][]complex128, d []complex128) *lti.ModalSystem {
	p := len(res[0])
	r := dense.NewMat[complex128](len(poles), p)
	for i := range poles {
		copy(r.Row(i), res[i])
	}
	blocks := []lti.ModalBlock{{Input: 0, Modal: true, Poles: poles, R: r, D: d}}
	ms, err := Realize(blocks, 1, p)
	if err != nil {
		panic(err)
	}
	return ms
}

func TestInterpolateIncompatibleAnchors(t *testing.T) {
	a := Anchor{Scale: 0.2, Modal: synthModal(
		[]complex128{-1e9}, [][]complex128{{1}}, nil)}
	cases := []struct {
		name string
		b    Anchor
	}{
		{"pole count", Anchor{Scale: 0.3, Modal: synthModal(
			[]complex128{-1e9, -2e9}, [][]complex128{{1}, {1}}, nil)}},
		{"direct term", Anchor{Scale: 0.3, Modal: synthModal(
			[]complex128{-1e9}, [][]complex128{{1}}, []complex128{2})}},
	}
	for _, tc := range cases {
		if _, _, err := Interpolate(a, tc.b, 0.25, Config{}); !errors.Is(err, ErrIncompatible) {
			t.Errorf("%s: got %v, want ErrIncompatible", tc.name, err)
		}
	}
	// Extrapolation and degenerate anchor spacing are incompatible too.
	b := Anchor{Scale: 0.3, Modal: synthModal([]complex128{-2e9}, [][]complex128{{1}}, nil)}
	if _, _, err := Interpolate(a, b, 0.4, Config{}); !errors.Is(err, ErrIncompatible) {
		t.Errorf("extrapolation: got %v", err)
	}
	if _, _, err := Interpolate(a, Anchor{Scale: 0.2, Modal: a.Modal}, 0.2, Config{}); !errors.Is(err, ErrIncompatible) {
		t.Errorf("equal anchors: got %v", err)
	}
}

func TestInterpolateAmbiguousPoleMatch(t *testing.T) {
	// The pole moved 9× its magnitude between anchors: no trustworthy linear
	// path exists and the guard must refuse.
	a := Anchor{Scale: 0.2, Modal: synthModal([]complex128{-1e9}, [][]complex128{{1}}, nil)}
	b := Anchor{Scale: 0.3, Modal: synthModal([]complex128{-1e10}, [][]complex128{{1}}, nil)}
	if _, _, err := Interpolate(a, b, 0.25, Config{}); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("got %v, want ErrAmbiguous", err)
	}
	// A wider guard admits the same pair.
	if _, _, err := Interpolate(a, b, 0.25, Config{MaxPoleShift: 20}); err != nil {
		t.Fatalf("wide guard: %v", err)
	}
}

func TestMatchPolesPairsNearest(t *testing.T) {
	a := []complex128{-1e9 + 5e9i, -1e9 - 5e9i, -3e12}
	b := []complex128{-3.3e12, -1.1e9 - 5.2e9i, -1.1e9 + 5.2e9i}
	match, worst, err := matchPoles(a, b, DefaultMaxPoleShift)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0}
	for i, m := range match {
		if m != want[i] {
			t.Fatalf("match = %v, want %v", match, want)
		}
	}
	if worst <= 0 || worst > DefaultMaxPoleShift {
		t.Fatalf("worst shift %g out of range", worst)
	}
}

// Conjugate pairs must interpolate to conjugate pairs and realize into real
// 2×2 rotation blocks with the exact transfer function.
func TestRealizeConjugatePairWithDirectTerm(t *testing.T) {
	poles := []complex128{-2e8 + 7e9i, -2e8 - 7e9i, -4e12}
	res := [][]complex128{{0.5 + 0.25i, -1i}, {0.5 - 0.25i, 1i}, {3, 2}}
	d := []complex128{0.125, -0.25}
	ms := synthModal(poles, res, d)
	if n, m, p := ms.Dims(); n != 4 || m != 1 || p != 2 {
		t.Fatalf("dims = %d,%d,%d (want 4,1,2: pair + real + algebraic)", n, m, p)
	}
	for _, w := range []float64{1e7, 7e9, 1e13} {
		s := complex(0, w)
		var want [2]complex128
		for i, lam := range poles {
			c := 1 / (s - lam)
			for rr := 0; rr < 2; rr++ {
				want[rr] += c * res[i][rr]
			}
		}
		want[0] += d[0]
		want[1] += d[1]
		got, err := ms.BD.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for rr := 0; rr < 2; rr++ {
			if diff := cmplx.Abs(got.At(rr, 0) - want[rr]); diff > 1e-10*(1+cmplx.Abs(want[rr])) {
				t.Fatalf("ω=%g row %d: got %v want %v", w, rr, got.At(rr, 0), want[rr])
			}
		}
	}
}

func TestRealizeRejectsUnpairedComplexPole(t *testing.T) {
	r := dense.NewMat[complex128](1, 1)
	r.Set(0, 0, 1)
	blocks := []lti.ModalBlock{{Input: 0, Modal: true, Poles: []complex128{-1e9 + 4e9i}, R: r}}
	if _, err := Realize(blocks, 1, 1); err == nil {
		t.Fatal("unpaired complex pole must not realize")
	}
}
