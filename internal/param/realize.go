package param

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dense"
	"repro/internal/lti"
)

// realTol classifies an interpolated pole as real (relative imaginary part)
// and bounds how far a complex pole may sit from its conjugate partner.
// Interpolated data inherits rounding from two independent
// eigendecompositions, so this is looser than machine epsilon but far tighter
// than any genuine pole spacing.
const realTol = 1e-7

// realizeCheckTol bounds the relative disagreement between the realized
// block-diagonal system and its modal form at probe frequencies. The two are
// algebraically identical, so anything beyond rounding noise means the
// conjugate pairing went wrong.
const realizeCheckTol = 1e-8

// Realize builds a real block-diagonal state-space realization of
// fully-modal blocks and returns it wrapped as an lti.ModalSystem whose
// modal data is the canonicalized (exactly conjugate-closed) form of the
// input — so the modal fast path and the factored fallback path of the
// result agree to machine precision, and everything downstream (factor
// cache, transient integrators, persistence) treats the interpolant as an
// ordinary ROM.
//
// Per block: each real pole λ with residue row r becomes one state
// (c=1, g=λ, b=1, L-column=r); each conjugate pair a±ib with residue r
// becomes the rotation block g=[[a,b],[-b,a]] with L-columns 2Re r, 2Im r;
// a nonzero direct term becomes one algebraic state (c=0, g=−1, b=1,
// L-column=D). Poles that are neither real within tolerance nor matched by
// a conjugate partner are an error — the caller falls back to reduction.
func Realize(blocks []lti.ModalBlock, m, p int) (*lti.ModalSystem, error) {
	bd := &lti.BlockDiagSystem{M: m, P: p, Blocks: make([]lti.Block, len(blocks))}
	canon := make([]lti.ModalBlock, len(blocks))
	for i := range blocks {
		if !blocks[i].Modal {
			return nil, fmt.Errorf("param: block %d has no modal form to realize", i)
		}
		blk, cb, err := realizeBlock(&blocks[i], p)
		if err != nil {
			return nil, fmt.Errorf("param: block %d: %w", i, err)
		}
		bd.Blocks[i], canon[i] = blk, cb
	}
	ms := &lti.ModalSystem{BD: bd, Blocks: canon}
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	if err := checkRealization(ms); err != nil {
		return nil, err
	}
	return ms, nil
}

// poleGroup is the canonical conjugate structure of one block's pole set.
type poleGroup struct {
	lam complex128
	r   []complex128 // residue row of lam, length p
	// pair marks a conjugate pair (lam has Im > 0; the partner is implied).
	pair bool
}

// groupPoles canonicalizes a pole set: real poles snap onto the real axis,
// complex poles pair with their conjugates (averaging the two sides so the
// pair is exactly conjugate). The input residue matrix is read row-by-row.
func groupPoles(mb *lti.ModalBlock) ([]poleGroup, error) {
	q := len(mb.Poles)
	used := make([]bool, q)
	groups := make([]poleGroup, 0, q)
	for i := 0; i < q; i++ {
		if used[i] {
			continue
		}
		used[i] = true
		lam := mb.Poles[i]
		r := append([]complex128(nil), mb.R.Row(i)...)
		if math.Abs(imag(lam)) <= realTol*(1+cmplx.Abs(lam)) {
			lam = complex(real(lam), 0)
			for c := range r {
				r[c] = complex(real(r[c]), 0)
			}
			groups = append(groups, poleGroup{lam: lam, r: r})
			continue
		}
		// Complex: find the conjugate partner among the unused poles.
		partner := -1
		best := math.Inf(1)
		for j := i + 1; j < q; j++ {
			if used[j] {
				continue
			}
			if d := cmplx.Abs(mb.Poles[j] - cmplx.Conj(lam)); d < best {
				partner, best = j, d
			}
		}
		if partner < 0 || best > realTol*(1+cmplx.Abs(lam)) {
			return nil, fmt.Errorf("pole %v has no conjugate partner (closest off by %g)", lam, best)
		}
		used[partner] = true
		lam = (lam + cmplx.Conj(mb.Poles[partner])) / 2
		rp := mb.R.Row(partner)
		for c := range r {
			r[c] = (r[c] + cmplx.Conj(rp[c])) / 2
		}
		if imag(lam) < 0 {
			// Canonical pole carries Im > 0; the residue flips with it.
			lam = cmplx.Conj(lam)
			for c := range r {
				r[c] = cmplx.Conj(r[c])
			}
		}
		groups = append(groups, poleGroup{lam: lam, r: r, pair: true})
	}
	return groups, nil
}

// realizeBlock builds one real state-space block plus its canonical modal
// form from one modal block's pole–residue data.
func realizeBlock(mb *lti.ModalBlock, p int) (lti.Block, lti.ModalBlock, error) {
	groups, err := groupPoles(mb)
	if err != nil {
		return lti.Block{}, lti.ModalBlock{}, err
	}
	var d []complex128
	hasD := false
	if mb.D != nil {
		d = make([]complex128, p)
		for c, v := range mb.D {
			// A real system's direct term is real up to rounding; a
			// significant imaginary part means the modal data is not
			// conjugate-consistent and must not be silently truncated.
			if math.Abs(imag(v)) > realTol*(1+cmplx.Abs(v)) {
				return lti.Block{}, lti.ModalBlock{}, fmt.Errorf("direct term entry %d = %v is not real", c, v)
			}
			d[c] = complex(real(v), 0)
			if real(v) != 0 {
				hasD = true
			}
		}
		if !hasD {
			d = nil
		}
	}
	order := 0
	for _, g := range groups {
		if g.pair {
			order += 2
		} else {
			order++
		}
	}
	if hasD {
		order++
	}

	c := dense.NewMat[float64](order, order)
	g := dense.NewMat[float64](order, order)
	b := make([]float64, order)
	l := dense.NewMat[float64](p, order)

	// Canonical modal data rebuilt alongside the realization: every value the
	// state-space carries is exactly the value the modal form reports.
	qq := 0
	for _, grp := range groups {
		if grp.pair {
			qq += 2
		} else {
			qq++
		}
	}
	poles := make([]complex128, 0, qq)
	r := dense.NewMat[complex128](qq, p)

	col := 0
	for _, grp := range groups {
		if !grp.pair {
			c.Set(col, col, 1)
			g.Set(col, col, real(grp.lam))
			b[col] = 1
			for row := 0; row < p; row++ {
				l.Set(row, col, real(grp.r[row]))
			}
			copy(r.Row(len(poles)), grp.r)
			poles = append(poles, grp.lam)
			col++
			continue
		}
		a, bb := real(grp.lam), imag(grp.lam)
		c.Set(col, col, 1)
		c.Set(col+1, col+1, 1)
		g.Set(col, col, a)
		g.Set(col, col+1, bb)
		g.Set(col+1, col, -bb)
		g.Set(col+1, col+1, a)
		b[col] = 1
		for row := 0; row < p; row++ {
			l.Set(row, col, 2*real(grp.r[row]))
			l.Set(row, col+1, 2*imag(grp.r[row]))
		}
		copy(r.Row(len(poles)), grp.r)
		poles = append(poles, grp.lam)
		conjRow := r.Row(len(poles))
		for cc := range conjRow {
			conjRow[cc] = cmplx.Conj(grp.r[cc])
		}
		poles = append(poles, cmplx.Conj(grp.lam))
		col += 2
	}
	if hasD {
		// Algebraic state: (s·0 − (−1))·x = 1 ⇒ x ≡ 1, contributing the
		// constant column D at every frequency.
		g.Set(col, col, -1)
		b[col] = 1
		for row := 0; row < p; row++ {
			l.Set(row, col, real(d[row]))
		}
	}
	blk := lti.Block{C: c, G: g, B: b, L: l, Input: mb.Input}
	cb := lti.ModalBlock{Input: mb.Input, Modal: true, Sym: mb.Sym, Poles: poles, R: r, D: d}
	return blk, cb, nil
}

// checkRealization compares the modal and state-space faces of the realized
// system at probe frequencies spread over the pole magnitudes. They are two
// encodings of the same rational function, so any disagreement beyond
// rounding means the realization is wrong and must not be served.
func checkRealization(ms *lti.ModalSystem) error {
	lo, hi := math.Inf(1), 0.0
	for i := range ms.Blocks {
		for _, lam := range ms.Blocks[i].Poles {
			if a := cmplx.Abs(lam); a > 0 {
				lo, hi = math.Min(lo, a), math.Max(hi, a)
			}
		}
	}
	if hi == 0 {
		lo, hi = 1e5, 1e15
	}
	for _, w := range []float64{lo / 2, math.Sqrt(lo * hi), hi * 2} {
		s := complex(0, w)
		hm, err := ms.Eval(s)
		if err != nil {
			return err
		}
		hb, err := ms.BD.Eval(s)
		if err != nil {
			return err
		}
		var num, den float64
		for i := range hm.Data {
			num += sqAbs(hm.Data[i] - hb.Data[i])
			den += sqAbs(hb.Data[i])
		}
		if den == 0 {
			den = 1
		}
		if math.Sqrt(num) > realizeCheckTol*math.Sqrt(den)+1e-300 {
			return fmt.Errorf("param: realization disagrees with modal form at ω=%g (rel err %g)",
				w, math.Sqrt(num/den))
		}
	}
	return nil
}

func sqAbs(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }
