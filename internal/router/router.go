package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Router defaults; see Config.
const (
	DefaultRetryBackoff    = 25 * time.Millisecond
	DefaultRetryBackoffMax = 500 * time.Millisecond
	DefaultHedgeMinDelay   = 20 * time.Millisecond
	DefaultHedgeMaxDelay   = 2 * time.Second
	DefaultShedRetryAfter  = 2 * time.Second
	DefaultMaxRespBytes    = int64(256 << 20)
	DefaultDialTimeout     = 1 * time.Second
	DefaultHeaderTimeout   = 30 * time.Second
)

// Config sizes a Router.
type Config struct {
	// Replicas are the pgserve base URLs the router fronts.
	Replicas []string
	// VNodes is the consistent-hash virtual node count per replica (0 =
	// DefaultVNodes).
	VNodes int
	// Breaker tunes the per-replica circuit breakers.
	Breaker BreakerConfig
	// ProbeInterval / ProbeTimeout drive the active health prober; 0 selects
	// the defaults. ProbeInterval < 0 disables active probing (tests).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// RetryBackoff is the base delay before the k-th retry attempt
	// (exponential, full jitter, capped at RetryBackoffMax). 0 selects the
	// defaults.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// Hedge enables hedged requests for idempotent reads (/eval, /sweep,
	// /interp): when the primary has not answered within the fleet's recent
	// p95 latency (clamped to [HedgeMinDelay, HedgeMaxDelay]), a second
	// attempt races on the next ring replica and the first complete response
	// wins.
	Hedge         bool
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// ShedRetryAfter is the Retry-After hint on 429s the router itself emits
	// when no usable replica remains for a key. 0 selects the default.
	ShedRetryAfter time.Duration
	// MaxBodyBytes caps request bodies (0 = serve.DefaultMaxBodyBytes);
	// MaxRespBytes caps the buffered upstream response (0 = 256 MiB).
	MaxBodyBytes int64
	MaxRespBytes int64
	// DialTimeout / ResponseHeaderTimeout bound each upstream attempt's
	// connect and first-byte latency. 0 selects the defaults.
	DialTimeout           time.Duration
	ResponseHeaderTimeout time.Duration
	// Transport overrides the upstream transport (tests, chaos harnesses).
	Transport http.RoundTripper
	// Logger receives router logs; nil discards.
	Logger *slog.Logger
	// DisableMetrics skips metrics registration and /metrics.
	DisableMetrics bool
	// Seed seeds retry jitter; 0 uses a fixed seed (jitter spreads
	// concurrent retries — it does not need to be unpredictable).
	Seed int64
}

// Router fronts a pgserve fleet: consistent-hash placement, health-aware
// failover, retries, hedging, single-flight builds, and session failover.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica
	order    []*replica // ring construction order, for /healthz and metrics
	client   *http.Client
	prober   *prober
	log      *slog.Logger
	reg      *obs.Registry
	metrics  *routerMetrics
	start    time.Time

	jitterMu sync.Mutex
	jitter   *rand.Rand

	readLatency *latencySampler // idempotent-read latencies, feeds hedge budget

	sessMu   sync.Mutex
	sessions map[string]*sessionEntry

	buildMu sync.Mutex
	builds  map[string]*buildCall
}

// sessionEntry is the router's record of one transient session: which
// replica owns it and the step count the client has observed. entry.mu
// serializes advances per session (matching pgserve's one-advance-at-a-time
// contract) and protects replica/step during failover.
type sessionEntry struct {
	mu      sync.Mutex
	replica *replica // nil when the owner is unknown (router restart)
	step    int64
}

// buildCall is one in-flight single-flighted /reduce.
type buildCall struct {
	done chan struct{}
	resp *bufferedResp
	err  error
}

// New assembles a Router and starts its health prober. Call Close to stop it.
func New(cfg Config) (*Router, error) {
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = DefaultRetryBackoffMax
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = DefaultHedgeMinDelay
	}
	if cfg.HedgeMaxDelay <= 0 {
		cfg.HedgeMaxDelay = DefaultHedgeMaxDelay
	}
	if cfg.ShedRetryAfter <= 0 {
		cfg.ShedRetryAfter = DefaultShedRetryAfter
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = serve.DefaultMaxBodyBytes
	}
	if cfg.MaxRespBytes <= 0 {
		cfg.MaxRespBytes = DefaultMaxRespBytes
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ResponseHeaderTimeout <= 0 {
		cfg.ResponseHeaderTimeout = DefaultHeaderTimeout
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: cfg.DialTimeout}).DialContext,
			ResponseHeaderTimeout: cfg.ResponseHeaderTimeout,
			MaxIdleConnsPerHost:   32,
			IdleConnTimeout:       time.Minute,
		}
	}
	rt := &Router{
		cfg:         cfg,
		ring:        ring,
		replicas:    make(map[string]*replica, len(cfg.Replicas)),
		client:      &http.Client{Transport: transport},
		log:         log,
		start:       time.Now(),
		jitter:      rand.New(rand.NewSource(cfg.Seed)),
		readLatency: newLatencySampler(256),
		sessions:    make(map[string]*sessionEntry),
		builds:      make(map[string]*buildCall),
	}
	for _, addr := range ring.Replicas() {
		rep := &replica{addr: addr, breaker: NewBreaker(cfg.Breaker)}
		rt.replicas[addr] = rep
		rt.order = append(rt.order, rep)
	}
	if !cfg.DisableMetrics {
		rt.reg = obs.NewRegistry()
		rt.metrics = newRouterMetrics(rt.reg, rt)
	}
	if cfg.ProbeInterval >= 0 {
		rt.prober = newProber(rt.order, cfg.ProbeInterval, cfg.ProbeTimeout, log,
			func(rep *replica, ok bool) { rt.metrics.probe(rep, ok) })
		rt.prober.run()
	}
	return rt, nil
}

// Close stops the health prober.
func (rt *Router) Close() {
	if rt.prober != nil {
		rt.prober.close()
	}
}

// Metrics exposes the router's registry (nil when DisableMetrics).
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// candidates returns the key's preference-ordered usable replicas.
func (rt *Router) candidates(key string) []*replica {
	now := time.Now()
	var out []*replica
	for _, addr := range rt.ring.Preference(key) {
		rep := rt.replicas[addr]
		if rep.usable(now) {
			out = append(out, rep)
		}
	}
	return out
}

// Handler returns the router's HTTP API — the same surface as one pgserve
// replica, plus the router's own /healthz and /metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /reduce", rt.handleReduce)
	mux.HandleFunc("POST /interp", func(w http.ResponseWriter, r *http.Request) {
		rt.handleModelRequest(w, r, true)
	})
	mux.HandleFunc("POST /eval", func(w http.ResponseWriter, r *http.Request) {
		rt.handleModelRequest(w, r, true)
	})
	mux.HandleFunc("POST /sweep", func(w http.ResponseWriter, r *http.Request) {
		rt.handleModelRequest(w, r, true)
	})
	mux.HandleFunc("POST /transient", func(w http.ResponseWriter, r *http.Request) {
		rt.handleModelRequest(w, r, false)
	})
	mux.HandleFunc("POST /session", rt.handleSessionCreate)
	mux.HandleFunc("POST /session/{id}/advance", rt.handleSessionAdvance)
	mux.HandleFunc("GET /session/{id}", rt.handleSessionGet)
	mux.HandleFunc("DELETE /session/{id}", rt.handleSessionDelete)
	mux.HandleFunc("GET /models", rt.handleModels)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	if rt.reg != nil {
		mux.Handle("GET /metrics", rt.reg.Handler())
	}
	return rt.withObs(mux)
}

// withObs traces and meters every request, mirroring pgserve's middleware so
// one X-Request-Id follows a request from client through router to replica.
func (rt *Router) withObs(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get("X-Request-Id"))
		w.Header().Set("X-Request-Id", tr.ID)
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rt.metrics.request(routeOf(mux, r), status, time.Since(t0))
	})
}

// ---- proxy plumbing ----

// proxyReq is one client request, read and ready to replay on any replica.
type proxyReq struct {
	method      string
	path        string // upstream path + raw query
	body        []byte
	contentType string
	requestID   string
}

// newProxyReq captures the request body (bounded) so attempts can replay it.
func (rt *Router) newProxyReq(w http.ResponseWriter, r *http.Request) (*proxyReq, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &routerError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return nil, &routerError{code: http.StatusBadRequest, msg: "reading request body: " + err.Error()}
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	return &proxyReq{
		method:      r.Method,
		path:        path,
		body:        body,
		contentType: r.Header.Get("Content-Type"),
		requestID:   obs.RequestID(r.Context()),
	}, nil
}

// bufferedResp is one complete upstream response. Buffering whole responses
// is the router's correctness lever: a response is relayed to the client only
// once it arrived complete, so a replica dying mid-stream becomes a retry,
// never a truncated client stream.
type bufferedResp struct {
	status     int
	header     http.Header
	body       []byte
	replica    string
	incomplete bool // body read failed partway — never relayed, always retried
}

// retryable reports whether this outcome should move on to the next replica:
// transport errors, gateway-ish statuses, and per-replica overload (429 —
// session caps and model bounds are per-replica, so a sibling may accept).
func (b *bufferedResp) retryable() bool {
	switch b.status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusTooManyRequests:
		return true
	}
	return false
}

// breakerFailure reports whether the outcome should count against the
// replica's breaker. 429 deliberately does not: an overloaded-but-correct
// replica is not a broken one.
func (b *bufferedResp) breakerFailure() bool {
	switch b.status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// routerError is an error the router itself produces (as opposed to relays).
type routerError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *routerError) Error() string { return e.msg }

func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusBadGateway
	var re *routerError
	retryAfter := time.Duration(0)
	if errors.As(err, &re) {
		code = re.code
		retryAfter = re.retryAfter
	}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	if id := obs.RequestID(r.Context()); id != "" {
		body["request_id"] = id
	}
	json.NewEncoder(w).Encode(body)
}

// errNoReplicas is the shed outcome: nothing usable owns the key right now.
func (rt *Router) errNoReplicas() error {
	rt.metrics.shed()
	return &routerError{
		code:       http.StatusTooManyRequests,
		msg:        "no healthy replica available",
		retryAfter: rt.cfg.ShedRetryAfter,
	}
}

// attempt sends preq to one replica and buffers the complete response,
// training the breaker with the outcome.
func (rt *Router) attempt(ctx context.Context, rep *replica, preq *proxyReq) (*bufferedResp, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	req, err := http.NewRequestWithContext(ctx, preq.method, rep.addr+preq.path, bytes.NewReader(preq.body))
	if err != nil {
		return nil, err
	}
	if preq.contentType != "" {
		req.Header.Set("Content-Type", preq.contentType)
	}
	if preq.requestID != "" {
		req.Header.Set("X-Request-Id", preq.requestID)
	}
	t0 := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.breaker.Failure(time.Now())
		rt.metrics.attempt(rep, "error")
		return nil, err
	}
	body, err := rt.readAll(resp.Body)
	resp.Body.Close()
	out := &bufferedResp{status: resp.StatusCode, header: resp.Header, body: body, replica: rep.addr}
	if err != nil {
		// Headers arrived but the body did not complete: a replica died (or a
		// network path reset) mid-stream. The partial body is discarded — the
		// client never sees it — and the outcome is a retryable failure.
		out.incomplete = true
		rep.breaker.Failure(time.Now())
		rt.metrics.attempt(rep, "truncated")
		return out, fmt.Errorf("incomplete response from %s: %w", rep.addr, err)
	}
	if out.breakerFailure() {
		rep.breaker.Failure(time.Now())
		rt.metrics.attempt(rep, "status_"+strconv.Itoa(out.status))
		return out, nil
	}
	rep.breaker.Success()
	rt.metrics.attempt(rep, "ok")
	rt.metrics.upstream(time.Since(t0))
	return out, nil
}

// readAll buffers an upstream body under the response cap.
func (rt *Router) readAll(r io.Reader) ([]byte, error) {
	var buf bytes.Buffer
	n, err := io.Copy(&buf, io.LimitReader(r, rt.cfg.MaxRespBytes+1))
	if err != nil {
		return buf.Bytes(), err
	}
	if n > rt.cfg.MaxRespBytes {
		return buf.Bytes(), fmt.Errorf("upstream response exceeds %d byte buffer cap", rt.cfg.MaxRespBytes)
	}
	return buf.Bytes(), nil
}

// backoff sleeps before the k-th retry (k ≥ 1): exponential with full
// jitter, capped. Returns false if the client context expired while waiting.
func (rt *Router) backoff(ctx context.Context, k int) bool {
	d := rt.cfg.RetryBackoff << (k - 1)
	if d > rt.cfg.RetryBackoffMax || d <= 0 {
		d = rt.cfg.RetryBackoffMax
	}
	rt.jitterMu.Lock()
	d = time.Duration(rt.jitter.Int63n(int64(d)) + 1)
	rt.jitterMu.Unlock()
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// do routes preq through the key's preference order with retries. Returns the
// first non-retryable response, or — when every replica failed — the last
// buffered response (so the client sees the replica's own 503/429 and
// Retry-After rather than a generic router error), or an error.
func (rt *Router) do(ctx context.Context, key string, preq *proxyReq) (*bufferedResp, *replica, error) {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		return nil, nil, rt.errNoReplicas()
	}
	var lastResp *bufferedResp
	var lastErr error
	for i, rep := range cands {
		if i > 0 {
			rt.metrics.retry()
			if !rt.backoff(ctx, i) {
				break
			}
		}
		resp, err := rt.attempt(ctx, rep, preq)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.retryable() && i+1 < len(cands) {
			lastResp = resp
			continue
		}
		return resp, rep, nil
	}
	if lastResp != nil && !lastResp.incomplete {
		return lastResp, nil, nil
	}
	if lastErr == nil {
		lastErr = errors.New("router: all attempts failed")
	}
	return nil, nil, &routerError{code: http.StatusBadGateway, msg: lastErr.Error()}
}

// doHedged is do() plus a latency hedge for idempotent reads: if the primary
// has not completed within the recent p95 budget, a second attempt races on
// the next usable replica and the first complete, non-retryable response
// wins. Falls back to sequential retry over the remaining candidates when
// both racers fail.
func (rt *Router) doHedged(ctx context.Context, key string, preq *proxyReq) (*bufferedResp, *replica, error) {
	cands := rt.candidates(key)
	if !rt.cfg.Hedge || len(cands) < 2 {
		return rt.do(ctx, key, preq)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp *bufferedResp
		rep  *replica
		err  error
	}
	resc := make(chan result, 2)
	launch := func(rep *replica) {
		go func() {
			resp, err := rt.attempt(hctx, rep, preq)
			resc <- result{resp: resp, rep: rep, err: err}
		}()
	}
	launch(cands[0])
	hedgeTimer := time.NewTimer(rt.hedgeDelay())
	defer hedgeTimer.Stop()
	launched, pending := 1, 1
	for pending > 0 {
		select {
		case <-hedgeTimer.C:
			if launched < 2 {
				rt.metrics.hedge()
				launch(cands[1])
				launched++
				pending++
			}
		case res := <-resc:
			pending--
			if res.err == nil && !res.resp.retryable() {
				if launched == 2 && res.rep == cands[1] {
					rt.metrics.hedgeWin()
				}
				return res.resp, res.rep, nil
			}
			// A failed primary before the hedge fires: start the hedge now
			// rather than waiting out the timer.
			if launched < 2 {
				launch(cands[1])
				launched++
				pending++
			}
		case <-ctx.Done():
			return nil, nil, &routerError{code: http.StatusBadGateway, msg: ctx.Err().Error()}
		}
	}
	// Both racers failed; fall through to the remaining candidates.
	if len(cands) > 2 {
		return rt.do(ctx, key, &proxyReq{
			method: preq.method, path: preq.path, body: preq.body,
			contentType: preq.contentType, requestID: preq.requestID,
		})
	}
	return nil, nil, &routerError{code: http.StatusBadGateway, msg: "all replicas failed"}
}

// hedgeDelay is the current hedge budget: the recent p95 of idempotent-read
// latencies, clamped to [HedgeMinDelay, HedgeMaxDelay].
func (rt *Router) hedgeDelay() time.Duration {
	d := rt.readLatency.percentile(0.95)
	if d < rt.cfg.HedgeMinDelay {
		d = rt.cfg.HedgeMinDelay
	}
	if d > rt.cfg.HedgeMaxDelay {
		d = rt.cfg.HedgeMaxDelay
	}
	return d
}

// relay writes a buffered upstream response to the client.
func relay(w http.ResponseWriter, resp *bufferedResp) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Upstream", resp.replica)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// ---- model-affinity endpoints ----

// routeKey extracts the placement key from a request body: the explicit
// model id, or the normalized ModelKey id for benchmark+scale requests.
// Unkeyed (malformed) bodies route by the empty key — the replica's own
// validation then produces the 400.
func routeKey(body []byte) string {
	var probe struct {
		Model string `json:"model"`
		serve.ModelKey
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return ""
	}
	if probe.Model != "" {
		return probe.Model
	}
	if probe.Benchmark == "" {
		return ""
	}
	key := probe.ModelKey
	key.Normalize()
	return key.ID()
}

// handleModelRequest proxies /eval, /sweep, /interp (hedged) and /transient
// (retried only) by model affinity.
func (rt *Router) handleModelRequest(w http.ResponseWriter, r *http.Request, hedged bool) {
	preq, err := rt.newProxyReq(w, r)
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	key := routeKey(preq.body)
	t0 := time.Now()
	var resp *bufferedResp
	if hedged {
		resp, _, err = rt.doHedged(r.Context(), key, preq)
	} else {
		resp, _, err = rt.do(r.Context(), key, preq)
	}
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	if hedged && resp.status == http.StatusOK {
		rt.readLatency.observe(time.Since(t0))
	}
	relay(w, resp)
}

// handleReduce single-flights cold builds at the router: concurrent /reduce
// requests for one model key collapse into a single upstream request, so a
// thundering herd reduces the model exactly once fleet-wide (the replica's
// own repository single-flight already dedupes within a replica; this layer
// dedupes across the herd arriving at the router).
func (rt *Router) handleReduce(w http.ResponseWriter, r *http.Request) {
	preq, err := rt.newProxyReq(w, r)
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	key := routeKey(preq.body)
	if key == "" {
		// Malformed body: let the primary replica produce the 400.
		resp, _, err := rt.do(r.Context(), key, preq)
		if err != nil {
			rt.writeError(w, r, err)
			return
		}
		relay(w, resp)
		return
	}
	rt.buildMu.Lock()
	if call, ok := rt.builds[key]; ok {
		rt.buildMu.Unlock()
		rt.metrics.buildMerged()
		select {
		case <-call.done:
		case <-r.Context().Done():
			rt.writeError(w, r, &routerError{code: http.StatusBadGateway, msg: r.Context().Err().Error()})
			return
		}
		if call.err != nil {
			rt.writeError(w, r, call.err)
			return
		}
		relay(w, call.resp)
		return
	}
	call := &buildCall{done: make(chan struct{})}
	rt.builds[key] = call
	rt.buildMu.Unlock()
	defer func() {
		rt.buildMu.Lock()
		delete(rt.builds, key)
		rt.buildMu.Unlock()
		close(call.done)
	}()
	// The leader detaches from its own client context: followers are waiting
	// on this build, so the leader's disconnect must not fail the herd.
	//pgmor:detach single-flight leader must outlive its own client so waiting followers still get the build
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	call.resp, _, call.err = rt.do(ctx, key, preq)
	if call.err != nil {
		rt.writeError(w, r, call.err)
		return
	}
	relay(w, call.resp)
}

// ---- session endpoints ----

// sessionKey is the ring key for a session id — sessions place independently
// of models (the resume path loads the model from the shared store wherever
// the session lands).
func sessionKey(id string) string { return "sess\x00" + id }

// upstreamSessionInfo is the subset of pgserve's session info the router
// tracks.
type upstreamSessionInfo struct {
	Session string `json:"session"`
	Step    int64  `json:"step"`
}

func (rt *Router) session(id string) *sessionEntry {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	e, ok := rt.sessions[id]
	if !ok {
		e = &sessionEntry{}
		rt.sessions[id] = e
	}
	return e
}

func (rt *Router) dropSession(id string) {
	rt.sessMu.Lock()
	delete(rt.sessions, id)
	rt.sessMu.Unlock()
}

func (rt *Router) sessionCount() int {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	return len(rt.sessions)
}

// handleSessionCreate routes a create by the model's placement key, so a
// session usually lands on the replica already holding its model hot.
func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	preq, err := rt.newProxyReq(w, r)
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	resp, rep, err := rt.do(r.Context(), routeKey(preq.body), preq)
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	if resp.status == http.StatusOK && rep != nil {
		var info upstreamSessionInfo
		if json.Unmarshal(resp.body, &info) == nil && info.Session != "" {
			e := rt.session(info.Session)
			e.mu.Lock()
			e.replica = rep
			e.step = info.Step
			e.mu.Unlock()
		}
	}
	relay(w, resp)
}

// resumeOn asks one replica to resume the session from its snapshot. step >
// 0 pins the resume to exactly that integration step (the replica checks
// both retained snapshot generations), so a lost-response advance can be
// rewound and replayed; 0 takes the latest snapshot.
func (rt *Router) resumeOn(ctx context.Context, rep *replica, id string, requestID string, step int64) (*bufferedResp, *upstreamSessionInfo, error) {
	req := map[string]any{"resume": id}
	if step > 0 {
		req["resume_step"] = step
	}
	body, _ := json.Marshal(req)
	resp, err := rt.attempt(ctx, rep, &proxyReq{
		method: http.MethodPost, path: "/session", body: body,
		contentType: "application/json", requestID: requestID,
	})
	if err != nil {
		return nil, nil, err
	}
	if resp.status != http.StatusOK {
		return resp, nil, nil
	}
	var info upstreamSessionInfo
	if err := json.Unmarshal(resp.body, &info); err != nil {
		return resp, nil, fmt.Errorf("router: decoding resume response: %w", err)
	}
	return resp, &info, nil
}

// failoverSession re-homes a session whose replica failed: walk the usable
// replicas (excluding the failed one) and resume from the persisted
// snapshot. wantStep > 0 pins the resume to that step so the caller can
// replay a lost advance; 0 takes the latest state. Returns the new owner and
// the resumed step. The caller holds e.mu.
func (rt *Router) failoverSession(ctx context.Context, e *sessionEntry, id, requestID string, exclude *replica, wantStep int64) (*replica, int64, error) {
	var lastDetail string
	for _, rep := range rt.candidates(sessionKey(id)) {
		if rep == exclude {
			continue
		}
		resp, info, err := rt.resumeOn(ctx, rep, id, requestID, wantStep)
		if err != nil {
			lastDetail = err.Error()
			continue
		}
		if info == nil {
			// 404: no snapshot (shared store ⇒ the same everywhere) — the
			// session is unrecoverable. 409: a stale copy of the session is
			// live on that replica, or its snapshots don't reach wantStep;
			// another candidate may still work. 429/503: that replica is
			// full or draining; try the next.
			lastDetail = fmt.Sprintf("%s: status %d: %.200s", rep.addr, resp.status, resp.body)
			if resp.status == http.StatusNotFound {
				break
			}
			continue
		}
		rt.metrics.failover()
		rt.log.Info("session failed over", "session", id, "to", rep.addr, "step", info.Step)
		e.replica = rep
		e.step = info.Step
		return rep, info.Step, nil
	}
	e.replica = nil
	return nil, 0, &routerError{code: http.StatusBadGateway,
		msg: fmt.Sprintf("session %s could not be failed over (%s)", id, lastDetail)}
}

// handleSessionAdvance proxies an advance to the session's sticky replica,
// buffering the whole NDJSON stream. If the replica fails before the stream
// completes, the session resumes on another replica from its snapshot and —
// when the resumed step matches the step the client last observed — the
// advance replays there, so the client receives one complete stream and
// never learns a replica died. (Exact replay requires the fleet to run
// -session-snapshot-every 1; a stale snapshot fails the advance with 502
// rather than silently replaying from the wrong state.)
func (rt *Router) handleSessionAdvance(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	preq, err := rt.newProxyReq(w, r)
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	var req struct {
		Steps int `json:"steps"`
	}
	json.Unmarshal(preq.body, &req) // malformed bodies 400 at the replica

	e := rt.session(id)
	// One advance per session at a time, mirroring the replica's own 409
	// contract — and required for the router's step accounting to be exact.
	if !e.mu.TryLock() {
		rt.writeError(w, r, &routerError{code: http.StatusConflict,
			msg: fmt.Sprintf("session %s has an advance in flight", id)})
		return
	}
	defer e.mu.Unlock()

	ctx := r.Context()
	if e.replica == nil || !e.replica.usable(time.Now()) {
		// Unknown owner (router restart) or known-bad replica: resume first.
		if _, _, err := rt.failoverSession(ctx, e, id, preq.requestID, nil, 0); err != nil {
			rt.dropSession(id)
			rt.writeError(w, r, err)
			return
		}
	}

	resp, err := rt.attempt(ctx, e.replica, preq)
	if err == nil && !resp.retryable() {
		rt.finishAdvance(w, e, id, resp, int64(req.Steps))
		return
	}
	if ctx.Err() != nil {
		rt.writeError(w, r, &routerError{code: http.StatusBadGateway, msg: ctx.Err().Error()})
		return
	}

	// The sticky replica failed. Resume elsewhere and replay the advance —
	// but only from exactly the step the client last saw.
	failed := e.replica
	preStep := e.step
	_, resumedStep, ferr := rt.failoverSession(ctx, e, id, preq.requestID, failed, preStep)
	if ferr != nil {
		rt.dropSession(id)
		rt.writeError(w, r, ferr)
		return
	}
	if resumedStep != preStep {
		rt.writeError(w, r, &routerError{code: http.StatusBadGateway,
			msg: fmt.Sprintf("session %s resumed at step %d but client observed step %d; cannot replay exactly (run replicas with -session-snapshot-every 1)", id, resumedStep, preStep)})
		return
	}
	rt.metrics.replay()
	resp, err = rt.attempt(ctx, e.replica, preq)
	if err != nil {
		rt.writeError(w, r, &routerError{code: http.StatusBadGateway,
			msg: "replayed advance failed: " + err.Error()})
		return
	}
	rt.finishAdvance(w, e, id, resp, int64(req.Steps))
}

// finishAdvance updates step accounting for a completed advance and relays
// it. The caller holds e.mu.
func (rt *Router) finishAdvance(w http.ResponseWriter, e *sessionEntry, id string, resp *bufferedResp, steps int64) {
	if resp.status == http.StatusOK {
		e.step += steps
	}
	if resp.status == http.StatusNotFound {
		rt.dropSession(id)
	}
	relay(w, resp)
}

// handleSessionGet proxies a state read, failing over (resume) if the sticky
// replica is gone — the resume response is itself the session info.
func (rt *Router) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	preq, err := rt.newProxyReq(w, r)
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	e := rt.session(id)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.replica != nil && e.replica.usable(time.Now()) {
		resp, err := rt.attempt(r.Context(), e.replica, preq)
		if err == nil && !resp.retryable() {
			if resp.status == http.StatusNotFound {
				rt.dropSession(id)
			}
			relay(w, resp)
			return
		}
	}
	failed := e.replica
	if _, _, err := rt.failoverSession(r.Context(), e, id, preq.requestID, failed, 0); err != nil {
		rt.dropSession(id)
		rt.writeError(w, r, err)
		return
	}
	resp, err := rt.attempt(r.Context(), e.replica, preq)
	if err != nil {
		rt.writeError(w, r, &routerError{code: http.StatusBadGateway, msg: err.Error()})
		return
	}
	relay(w, resp)
}

// handleSessionDelete deletes on the sticky replica (which also removes the
// persisted snapshot); if that replica is gone, the session is resumed
// elsewhere first so the delete — and the snapshot removal — still happen.
func (rt *Router) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	preq, err := rt.newProxyReq(w, r)
	if err != nil {
		rt.writeError(w, r, err)
		return
	}
	e := rt.session(id)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.replica != nil && e.replica.usable(time.Now()) {
		resp, err := rt.attempt(r.Context(), e.replica, preq)
		if err == nil && !resp.retryable() {
			rt.dropSession(id)
			relay(w, resp)
			return
		}
	}
	failed := e.replica
	if _, _, err := rt.failoverSession(r.Context(), e, id, preq.requestID, failed, 0); err != nil {
		rt.dropSession(id)
		rt.writeError(w, r, err)
		return
	}
	resp, err := rt.attempt(r.Context(), e.replica, preq)
	rt.dropSession(id)
	if err != nil {
		rt.writeError(w, r, &routerError{code: http.StatusBadGateway, msg: err.Error()})
		return
	}
	relay(w, resp)
}

// ---- fleet endpoints ----

// handleModels merges every usable replica's model list (deduplicated by
// id), so clients see the fleet's models regardless of placement.
func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	type result struct {
		models []json.RawMessage
		err    error
	}
	cands := rt.candidates("")
	// candidates("") returns ring order for the empty key; for a fleet-wide
	// fan-out we want every usable replica, which is the same set.
	if len(cands) == 0 {
		rt.writeError(w, r, rt.errNoReplicas())
		return
	}
	resc := make(chan result, len(cands))
	for _, rep := range cands {
		rep := rep
		go func() {
			resp, err := rt.attempt(r.Context(), rep, &proxyReq{
				method: http.MethodGet, path: "/models", requestID: obs.RequestID(r.Context()),
			})
			if err != nil {
				resc <- result{err: err}
				return
			}
			var models []json.RawMessage
			if err := json.Unmarshal(resp.body, &models); err != nil {
				resc <- result{err: err}
				return
			}
			resc <- result{models: models}
		}()
	}
	seen := make(map[string]bool)
	var merged []json.RawMessage
	for range cands {
		res := <-resc
		if res.err != nil {
			continue // partial view beats total failure
		}
		for _, m := range res.models {
			var probe struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(m, &probe) != nil || seen[probe.ID] {
				continue
			}
			seen[probe.ID] = true
			merged = append(merged, m)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return bytes.Compare(merged[i], merged[j]) < 0 })
	w.Header().Set("Content-Type", "application/json")
	if merged == nil {
		merged = []json.RawMessage{}
	}
	json.NewEncoder(w).Encode(merged)
}

// handleHealthz reports the router's own health: 200 while at least one
// replica is usable, 503 (with Retry-After) otherwise, with per-replica
// probe and breaker detail either way.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	states := make([]probeState, 0, len(rt.order))
	usable := 0
	for _, rep := range rt.order {
		st := rep.state(now)
		if st.Usable {
			usable++
		}
		states = append(states, st)
	}
	body := map[string]any{
		"replicas":         states,
		"usable":           usable,
		"sessions_tracked": rt.sessionCount(),
		"uptime_s":         time.Since(rt.start).Seconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	if usable == 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(int64((rt.cfg.ShedRetryAfter+time.Second-1)/time.Second), 10))
		w.WriteHeader(http.StatusServiceUnavailable)
		body["status"] = "unavailable"
	} else {
		body["status"] = "ok"
	}
	json.NewEncoder(w).Encode(body)
}

// ---- latency sampling ----

// latencySampler is a fixed-size ring of recent durations; percentile sorts
// a copy at query time. Small (256 entries) and queried once per hedged
// request, so the copy+sort cost is noise.
type latencySampler struct {
	mu     sync.Mutex
	buf    []time.Duration
	n      int // total observed
	cursor int
}

func newLatencySampler(size int) *latencySampler {
	return &latencySampler{buf: make([]time.Duration, size)}
}

func (s *latencySampler) observe(d time.Duration) {
	s.mu.Lock()
	s.buf[s.cursor] = d
	s.cursor = (s.cursor + 1) % len(s.buf)
	s.n++
	s.mu.Unlock()
}

// percentile returns the p-th percentile of the window, or 0 with no samples.
func (s *latencySampler) percentile(p float64) time.Duration {
	s.mu.Lock()
	size := s.n
	if size > len(s.buf) {
		size = len(s.buf)
	}
	cp := append([]time.Duration(nil), s.buf[:size]...)
	s.mu.Unlock()
	if len(cp) == 0 {
		return 0
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p * float64(len(cp)))
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// statusWriter mirrors serve's: captures status for metrics while preserving
// Flush for relayed streams.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// routeOf mirrors serve's: the mux pattern, method-stripped, for metric
// labels.
func routeOf(mux *http.ServeMux, r *http.Request) string {
	_, pattern := mux.Handler(r)
	if pattern == "" {
		return "unmatched"
	}
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		return pattern[i+1:]
	}
	return pattern
}
