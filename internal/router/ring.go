// Package router is the fault-tolerant front tier of a pgserve fleet: one
// stateless HTTP process that owns replica selection so clients never see a
// single replica's failure.
//
// Placement is a consistent hash ring over the model key space: every model
// has a stable primary replica (maximizing that replica's model-repository
// and factorization-cache hit rates) and a deterministic preference order of
// fallbacks, so losing one replica reshuffles only the models it owned.
// Health is tracked two ways — an active /healthz prober and a per-replica
// circuit breaker fed by real request outcomes — and requests route only to
// replicas both consider usable. Failed or slow attempts retry on the next
// ring replica with capped exponential backoff; idempotent reads can hedge;
// cold /reduce builds are single-flighted at the router so a thundering herd
// reduces a model exactly once fleet-wide; transient sessions fail over by
// resuming from persisted snapshots. When nothing healthy owns a model, the
// router sheds with 429 + Retry-After instead of queueing.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per replica. 128 keeps the maximum
// per-replica load imbalance under a few percent for small fleets while the
// ring stays tiny (N×128 entries).
const DefaultVNodes = 128

// Ring is an immutable consistent hash ring: replicas × vnodes points on a
// 64-bit circle. Lookup walks clockwise from the key's hash collecting
// distinct replicas — the preference order for that key.
type Ring struct {
	replicas []string
	hashes   []uint64 // sorted vnode positions
	owner    []int    // owner[i] = index into replicas of hashes[i]
}

// NewRing builds a ring over the replica base URLs. vnodes <= 0 selects
// DefaultVNodes.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one replica")
	}
	seen := make(map[string]bool, len(replicas))
	for _, rep := range replicas {
		if rep == "" {
			return nil, fmt.Errorf("router: empty replica address")
		}
		if seen[rep] {
			return nil, fmt.Errorf("router: duplicate replica %q", rep)
		}
		seen[rep] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		hashes:   make([]uint64, 0, len(replicas)*vnodes),
		owner:    make([]int, 0, len(replicas)*vnodes),
	}
	type point struct {
		h     uint64
		owner int
	}
	pts := make([]point, 0, len(replicas)*vnodes)
	for i, rep := range r.replicas {
		base := hash64(rep)
		for v := 0; v < vnodes; v++ {
			// Derive vnode positions by mixing the replica hash with the vnode
			// index through a splitmix64 finalizer. Hashing "addr#v" strings
			// directly with FNV-1a leaves the points badly clustered (near-50%
			// ownership skew at 128 vnodes); the finalizer's avalanche spreads
			// them uniformly.
			pts = append(pts, point{h: mix64(base + uint64(v)*0x9e3779b97f4a7c15), owner: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		return pts[a].owner < pts[b].owner // deterministic on (vanishingly rare) collisions
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.owner)
	}
	return r, nil
}

// Replicas returns every replica on the ring, in construction order.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Preference returns every replica in the key's preference order: the primary
// first, then each distinct replica met walking the ring clockwise. The order
// is a pure function of (ring membership, key) — every router instance
// computes the same one.
func (r *Ring) Preference(key string) []string {
	h := hash64(key)
	// First vnode at or after h, wrapping.
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= h })
	out := make([]string, 0, len(r.replicas))
	taken := make([]bool, len(r.replicas))
	for n := 0; n < len(r.hashes) && len(out) < len(r.replicas); n++ {
		o := r.owner[(i+n)%len(r.hashes)]
		if !taken[o] {
			taken[o] = true
			out = append(out, r.replicas[o])
		}
	}
	return out
}

// Primary returns the first replica in the key's preference order.
func (r *Ring) Primary(key string) string { return r.Preference(key)[0] }

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose avalanche
// compensates for FNV-1a's weak diffusion on short, similar strings.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
