package router

import (
	"sync"
	"time"
)

// Breaker defaults; see BreakerConfig.
const (
	DefaultFailThreshold = 3
	DefaultOpenFor       = 2 * time.Second
	DefaultOpenForMax    = 30 * time.Second
	DefaultProbation     = 2
)

// breakerState is the classic three-state circuit.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig tunes one replica's circuit breaker.
type BreakerConfig struct {
	// FailThreshold consecutive failures trip the breaker open; 0 selects
	// DefaultFailThreshold.
	FailThreshold int
	// OpenFor is how long the breaker stays open before admitting a trial
	// request; each re-trip from half-open doubles it up to OpenForMax, so a
	// persistently dead replica is probed ever more rarely. 0 selects the
	// defaults.
	OpenFor    time.Duration
	OpenForMax time.Duration
	// Probation is how many consecutive half-open successes close the
	// breaker; 0 selects DefaultProbation.
	Probation int
}

func (c *BreakerConfig) defaults() {
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultOpenFor
	}
	if c.OpenForMax <= 0 {
		c.OpenForMax = DefaultOpenForMax
	}
	if c.Probation <= 0 {
		c.Probation = DefaultProbation
	}
}

// Breaker is one replica's circuit breaker. Closed: requests flow, and
// FailThreshold consecutive failures trip it open. Open: requests are
// refused until the cooldown elapses, then one trial request is admitted
// (half-open). Half-open: Probation consecutive successes close it; any
// failure re-opens with a doubled (capped) cooldown.
//
// All methods are safe for concurrent use. The breaker observes both real
// request outcomes and active health probes — whichever fails first pulls the
// replica, whichever succeeds first starts rehabilitating it.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state     breakerState
	fails     int           // consecutive failures while closed
	successes int           // consecutive successes while half-open
	openUntil time.Time     // when open admits the next trial
	cooldown  time.Duration // current open duration (doubles per re-trip)
	inTrial   bool          // a half-open trial request is in flight
	trips     int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg, cooldown: cfg.OpenFor}
}

// Allow reports whether a request may be sent to the replica right now. In
// half-open state only one trial request is admitted at a time; the caller
// must report its outcome via Success or Failure (which also ends the trial).
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.successes = 0
		b.inTrial = true
		return true
	default: // half-open
		if b.inTrial {
			return false
		}
		b.inTrial = true
		return true
	}
}

// Success records a successful request or probe.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails = 0
	case breakerHalfOpen:
		b.inTrial = false
		b.successes++
		if b.successes >= b.cfg.Probation {
			b.state = breakerClosed
			b.fails = 0
			b.cooldown = b.cfg.OpenFor // full recovery resets the backoff
		}
	case breakerOpen:
		// A probe succeeded while the cooldown still runs (e.g. the replica
		// restarted): move straight to half-open probation.
		b.state = breakerHalfOpen
		b.successes = 1
		b.inTrial = false
		if b.successes >= b.cfg.Probation {
			b.state = breakerClosed
			b.fails = 0
			b.cooldown = b.cfg.OpenFor
		}
	}
}

// Failure records a failed request or probe.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.trip(now)
		}
	case breakerHalfOpen:
		b.inTrial = false
		b.cooldown *= 2
		if b.cooldown > b.cfg.OpenForMax {
			b.cooldown = b.cfg.OpenForMax
		}
		b.trip(now)
	case breakerOpen:
		// Already open: push the horizon out from this latest failure.
		b.openUntil = now.Add(b.cooldown)
	}
}

// trip moves to open; caller holds b.mu.
func (b *Breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openUntil = now.Add(b.cooldown)
	b.fails = 0
	b.trips++
}

// State reports the current state (resolving an elapsed open cooldown as
// open still — only Allow performs the open→half-open transition).
func (b *Breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
