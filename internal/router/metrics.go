package router

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// routerMetrics is the pgrouter_* instrument set. All methods are nil-safe
// so DisableMetrics costs one nil check per event and no conditionals at
// call sites.
type routerMetrics struct {
	requests   *obs.CounterVec   // route, status
	latency    *obs.HistogramVec // route
	attempts   *obs.CounterVec   // replica, outcome
	upstreamS  *obs.Histogram
	retries    *obs.Counter
	hedges     *obs.Counter
	hedgeWins  *obs.Counter
	sheds      *obs.Counter
	failovers  *obs.Counter
	replays    *obs.Counter
	merged     *obs.Counter
	replicaUp  *obs.GaugeVec // replica
	breakerNum *obs.GaugeVec // replica: 0 closed, 1 half-open, 2 open
}

func newRouterMetrics(reg *obs.Registry, rt *Router) *routerMetrics {
	m := &routerMetrics{
		requests: reg.CounterVec("pgrouter_requests_total",
			"Client requests by route and final status.", "route", "status"),
		latency: reg.HistogramVec("pgrouter_request_seconds",
			"End-to-end router latency by route.", obs.ExpBuckets(1e-4, 10, 7), "route"),
		attempts: reg.CounterVec("pgrouter_upstream_attempts_total",
			"Upstream attempts by replica and outcome (ok, error, truncated, status_*).",
			"replica", "outcome"),
		upstreamS: reg.Histogram("pgrouter_upstream_seconds",
			"Successful upstream attempt latency.", obs.ExpBuckets(1e-4, 10, 7)),
		retries: reg.Counter("pgrouter_retries_total",
			"Attempts moved to the next ring replica."),
		hedges: reg.Counter("pgrouter_hedges_total",
			"Hedged second attempts launched for idempotent reads."),
		hedgeWins: reg.Counter("pgrouter_hedge_wins_total",
			"Hedged attempts that beat the primary."),
		sheds: reg.Counter("pgrouter_shed_total",
			"Requests shed with 429 because no usable replica owned the key."),
		failovers: reg.Counter("pgrouter_session_failovers_total",
			"Sessions resumed on another replica after their owner failed."),
		replays: reg.Counter("pgrouter_session_replays_total",
			"Advances replayed on the failover replica after a mid-stream failure."),
		merged: reg.Counter("pgrouter_singleflight_merged_total",
			"/reduce requests coalesced into an already in-flight build."),
		replicaUp: reg.GaugeVec("pgrouter_replica_up",
			"Last health-probe verdict per replica (1 = ready).", "replica"),
		breakerNum: reg.GaugeVec("pgrouter_breaker_state",
			"Breaker state per replica (0 = closed, 1 = half-open, 2 = open).", "replica"),
	}
	reg.GaugeFunc("pgrouter_replicas_usable",
		"Replicas currently accepting routed traffic.", func() float64 {
			now := time.Now()
			n := 0
			for _, rep := range rt.order {
				if rep.usable(now) {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("pgrouter_sessions_tracked",
		"Transient sessions with a sticky replica assignment.", func() float64 {
			return float64(rt.sessionCount())
		})
	reg.GaugeFunc("pgrouter_inflight",
		"Requests currently in flight to any replica.", func() float64 {
			var n int64
			for _, rep := range rt.order {
				n += rep.inflight.Load()
			}
			return float64(n)
		})
	reg.CounterFunc("pgrouter_breaker_trips_total",
		"Breaker trips summed over replicas.", func() int64 {
			var n int64
			for _, rep := range rt.order {
				n += rep.breaker.Trips()
			}
			return n
		})
	return m
}

func (m *routerMetrics) request(route string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.requests.With(route, strconv.Itoa(status)).Inc()
	m.latency.With(route).Observe(d.Seconds())
}

// attempt records an upstream outcome and refreshes the replica's breaker
// gauge (breaker transitions happen inside attempt outcomes, so this is the
// natural refresh point).
func (m *routerMetrics) attempt(rep *replica, outcome string) {
	if m == nil {
		return
	}
	m.attempts.With(rep.addr, outcome).Inc()
	m.breakerNum.With(rep.addr).Set(breakerGaugeValue(rep.breaker.State()))
}

// probe records a health-probe verdict (wired as the prober's onProbe hook).
func (m *routerMetrics) probe(rep *replica, ok bool) {
	if m == nil {
		return
	}
	v := int64(0)
	if ok {
		v = 1
	}
	m.replicaUp.With(rep.addr).Set(v)
	m.breakerNum.With(rep.addr).Set(breakerGaugeValue(rep.breaker.State()))
}

func breakerGaugeValue(s breakerState) int64 {
	switch s {
	case breakerClosed:
		return 0
	case breakerHalfOpen:
		return 1
	default:
		return 2
	}
}

func (m *routerMetrics) upstream(d time.Duration) {
	if m == nil {
		return
	}
	m.upstreamS.Observe(d.Seconds())
}

func (m *routerMetrics) retry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *routerMetrics) hedge() {
	if m == nil {
		return
	}
	m.hedges.Inc()
}

func (m *routerMetrics) hedgeWin() {
	if m == nil {
		return
	}
	m.hedgeWins.Inc()
}

func (m *routerMetrics) shed() {
	if m == nil {
		return
	}
	m.sheds.Inc()
}

func (m *routerMetrics) failover() {
	if m == nil {
		return
	}
	m.failovers.Inc()
}

func (m *routerMetrics) replay() {
	if m == nil {
		return
	}
	m.replays.Inc()
}

func (m *routerMetrics) buildMerged() {
	if m == nil {
		return
	}
	m.merged.Inc()
}
