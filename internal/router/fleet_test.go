package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/router/chaos"
	"repro/internal/serve"
	"repro/internal/store"
)

// fleetReplica is one pgserve instance fronted by a chaos proxy; the router
// only ever sees the proxy address, so faults injected there look exactly
// like the replica failing.
type fleetReplica struct {
	srv   *serve.Server
	ts    *httptest.Server
	proxy *chaos.Proxy
}

// startFleet boots n replicas over one shared store directory (the fleet's
// durable tier: ROMs and session snapshots), each with exact-failover
// snapshotting (-session-snapshot-every 1 equivalent).
func startFleet(t *testing.T, n int, dir string) []*fleetReplica {
	t.Helper()
	var fleet []*fleetReplica
	for i := 0; i < n; i++ {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		srv := serve.New(serve.Config{Workers: 2, Store: st, SnapshotEvery: 1})
		ts := httptest.NewServer(srv.Handler())
		u, _ := url.Parse(ts.URL)
		proxy, err := chaos.New(u.Host)
		if err != nil {
			t.Fatalf("chaos.New: %v", err)
		}
		rep := &fleetReplica{srv: srv, ts: ts, proxy: proxy}
		fleet = append(fleet, rep)
		t.Cleanup(func() {
			proxy.Close()
			ts.Close()
			srv.Close()
		})
	}
	return fleet
}

func fleetURLs(fleet []*fleetReplica) []string {
	out := make([]string, len(fleet))
	for i, rep := range fleet {
		out[i] = rep.proxy.URL()
	}
	return out
}

// byProxyURL maps a router replica address (proxy URL) back to the fleet
// entry.
func byProxyURL(t *testing.T, fleet []*fleetReplica, addr string) *fleetReplica {
	t.Helper()
	for _, rep := range fleet {
		if rep.proxy.URL() == addr {
			return rep
		}
	}
	t.Fatalf("no fleet replica for %q", addr)
	return nil
}

// reduceCount sums completed /reduce requests across the fleet by scraping
// each replica's own /metrics (through the direct address, not the proxy).
func reduceCount(t *testing.T, fleet []*fleetReplica) float64 {
	t.Helper()
	var total float64
	for _, rep := range fleet {
		resp, err := http.Get(rep.ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("scrape %s: %v", rep.ts.URL, err)
		}
		sc, err := obs.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("parse metrics: %v", err)
		}
		if v, ok := sc.Value("pgserve_http_requests_total", "route", "/reduce", "status", "200"); ok {
			total += v
		}
	}
	return total
}

// mustPost posts JSON through the router and fails the test on transport
// errors or unexpected status — the "zero client-visible failures" assertion,
// applied to every call.
func mustPost(t *testing.T, url string, body any) []byte {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: client-visible transport failure: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: client-visible truncated body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: client-visible failure: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}

// advanceRows posts one advance and decodes the NDJSON rows, failing on any
// embedded error line or malformed row.
func advanceRows(t *testing.T, routerURL, sessionID string, steps int) []serveRow {
	t.Helper()
	body := map[string]any{
		"steps": steps,
		"input": map[string]any{"kind": "sine", "amplitude": 1.0, "freq": 2e9},
	}
	raw := mustPost(t, routerURL+"/session/"+sessionID+"/advance", body)
	var rows []serveRow
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("malformed NDJSON row %q: %v", line, err)
		}
		if e, ok := probe["error"]; ok {
			t.Fatalf("advance stream carries an error row: %s", e)
		}
		var row serveRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row decode: %v", err)
		}
		rows = append(rows, row)
	}
	return rows
}

type serveRow struct {
	T float64   `json:"t"`
	Y []float64 `json:"y"`
}

// TestFleetChaos is the end-to-end acceptance test for the router tier:
// three replicas behind deterministic chaos proxies, one router, and a
// client that must never observe a failure while replicas are killed
// mid-sweep and mid-session.
func TestFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e is several seconds of real integration")
	}
	dir := t.TempDir()
	fleet := startFleet(t, 3, dir)
	rt, err := New(Config{
		Replicas:      fleetURLs(fleet),
		ProbeInterval: -1, // breaker-only health: chaos faults stay deterministic per request
		RetryBackoff:  time.Millisecond,
		Breaker:       BreakerConfig{FailThreshold: 8, OpenFor: 200 * time.Millisecond},
		Transport:     &http.Transport{DisableKeepAlives: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	// --- build the model through the router ---
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(mustPost(t, router.URL+"/reduce",
		map[string]any{"benchmark": "ckt1", "scale": 0.1}), &info); err != nil || info.ID == "" {
		t.Fatalf("reduce: %v (id %q)", err, info.ID)
	}

	// --- single-flight proof: a thundering herd reduces exactly once ---
	before := reduceCount(t, fleet)
	const herd = 10
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			raw, _ := json.Marshal(map[string]any{"benchmark": "ckt1", "scale": 0.2})
			resp, err := http.Post(router.URL+"/reduce", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("herd reduce status %d: %s", resp.StatusCode, b)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if delta := reduceCount(t, fleet) - before; delta != 1 {
		t.Fatalf("herd of %d drove %g upstream /reduce calls across the fleet, want exactly 1 (router single-flight)", herd, delta)
	}

	// --- ground-truth sweep, then the same sweep with the primary dying
	// mid-stream ---
	sweepBody := map[string]any{
		"model": info.ID, "wmin": 1e8, "wmax": 1e10, "points": 40,
	}
	truth := mustPost(t, router.URL+"/sweep", sweepBody)
	primary := byProxyURL(t, fleet, rt.ring.Primary(info.ID))
	primary.proxy.SetFallback(chaos.Rule{TruncateAfterBytes: 400})
	retriesBefore := rt.metrics.retries.Value()
	chaosSweep := mustPost(t, router.URL+"/sweep", sweepBody)
	primary.proxy.SetFallback(chaos.Rule{})
	if !bytes.Equal(truth, chaosSweep) {
		t.Fatalf("sweep through a mid-stream replica death differs from ground truth:\n%.200s\nvs\n%.200s", truth, chaosSweep)
	}
	if rt.metrics.retries.Value() == retriesBefore {
		t.Error("mid-sweep kill did not register a retry — the fault was not exercised")
	}

	// --- session continuity: reference run, then a chaos run with the owner
	// killed between advances AND mid-stream, compared bit-exactly ---
	const advSteps, advances = 192, 6
	runSession := func(chaosFn func(advance int, e *sessionEntry)) []serveRow {
		var sess struct {
			Session string `json:"session"`
		}
		if err := json.Unmarshal(mustPost(t, router.URL+"/session",
			map[string]any{"model": info.ID, "dt": 1e-10}), &sess); err != nil || sess.Session == "" {
			t.Fatalf("session create: %v", err)
		}
		var rows []serveRow
		for a := 0; a < advances; a++ {
			if chaosFn != nil {
				rt.sessMu.Lock()
				e := rt.sessions[sess.Session]
				rt.sessMu.Unlock()
				chaosFn(a, e)
			}
			rows = append(rows, advanceRows(t, router.URL, sess.Session, advSteps)...)
		}
		// Delete through the router (also removes the persisted snapshot).
		req, _ := http.NewRequest(http.MethodDelete, router.URL+"/session/"+sess.Session, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE session: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE session status = %d", resp.StatusCode)
		}
		return rows
	}

	reference := runSession(nil)
	wantRows := advances*advSteps + 1 // + the t=0 row from the first advance
	if len(reference) != wantRows {
		t.Fatalf("reference session emitted %d rows, want %d", len(reference), wantRows)
	}

	failoversBefore := rt.metrics.failovers.Value()
	var killed *fleetReplica
	chaotic := runSession(func(advance int, e *sessionEntry) {
		switch advance {
		case 3:
			// Kill the session's owner outright between advances: every new
			// connection refused, in-flight ones reset.
			e.mu.Lock()
			killed = byProxyURL(t, fleet, e.replica.addr)
			e.mu.Unlock()
			killed.proxy.SetFallback(chaos.Rule{Refuse: true})
			killed.proxy.KillActive()
		case 4:
			// The previous failover picked a new owner; now that owner dies
			// MID-STREAM: the advance truncates partway through the NDJSON
			// rows and must be replayed elsewhere, invisibly.
			killed.proxy.SetFallback(chaos.Rule{}) // the first victim "recovers"
			e.mu.Lock()
			owner := byProxyURL(t, fleet, e.replica.addr)
			e.mu.Unlock()
			owner.proxy.SetRule(owner.proxy.Accepted(), chaos.Rule{TruncateAfterBytes: 600})
		}
	})
	if len(chaotic) != wantRows {
		t.Fatalf("chaos session emitted %d rows, want %d", len(chaotic), wantRows)
	}
	for i := range reference {
		if reference[i].T != chaotic[i].T {
			t.Fatalf("row %d: t=%v (chaos) vs t=%v (reference) — step continuity broken", i, chaotic[i].T, reference[i].T)
		}
		if len(reference[i].Y) != len(chaotic[i].Y) {
			t.Fatalf("row %d: y width differs", i)
		}
		for j := range reference[i].Y {
			if reference[i].Y[j] != chaotic[i].Y[j] {
				t.Fatalf("row %d col %d: %v (chaos) != %v (reference) — failover is not bit-exact", i, j, chaotic[i].Y[j], reference[i].Y[j])
			}
		}
	}
	if rt.metrics.failovers.Value() < failoversBefore+2 {
		t.Errorf("failovers = %d (was %d); both kills should have failed over",
			rt.metrics.failovers.Value(), failoversBefore)
	}
	if rt.metrics.replays.Value() == 0 {
		t.Error("no advance was replayed — the mid-stream kill path was not exercised")
	}
}
