package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- ring ----

func TestRingDeterminismAndCoverage(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := NewRing(replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(replicas, 0)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("model-%d", i)
		p1, p2 := r1.Preference(key), r2.Preference(key)
		if len(p1) != len(replicas) {
			t.Fatalf("preference for %q has %d replicas, want %d", key, len(p1), len(replicas))
		}
		seen := map[string]bool{}
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("preference order for %q differs between identical rings", key)
			}
			if seen[p1[j]] {
				t.Fatalf("preference for %q repeats replica %s", key, p1[j])
			}
			seen[p1[j]] = true
		}
		counts[p1[0]]++
	}
	for rep, n := range counts {
		share := float64(n) / keys
		if share < 0.20 || share > 0.47 {
			t.Errorf("replica %s owns %.1f%% of keys; want roughly balanced (33%%)", rep, share*100)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Error("duplicate replica accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty replica address accepted")
	}
}

// ---- breaker ----

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailThreshold: 3, OpenFor: 2 * time.Second, OpenForMax: 8 * time.Second, Probation: 2})
	t0 := time.Now()
	if !b.Allow(t0) {
		t.Fatal("new breaker refuses requests")
	}
	b.Failure(t0)
	b.Failure(t0)
	if b.State() != breakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Failure(t0) // third consecutive failure trips
	if b.State() != breakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	if b.Allow(t0.Add(time.Second)) {
		t.Fatal("open breaker admitted a request during cooldown")
	}
	// Cooldown elapsed: exactly one trial is admitted (half-open).
	if !b.Allow(t0.Add(3 * time.Second)) {
		t.Fatal("open breaker refused the post-cooldown trial")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow(t0.Add(3 * time.Second)) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// Trial fails: re-trip with doubled cooldown (4s).
	b.Failure(t0.Add(3 * time.Second))
	if b.State() != breakerOpen {
		t.Fatalf("state = %v, want open after failed trial", b.State())
	}
	if b.Allow(t0.Add(6 * time.Second)) {
		t.Fatal("doubled cooldown (4s) not honored")
	}
	if !b.Allow(t0.Add(8 * time.Second)) {
		t.Fatal("trial refused after doubled cooldown elapsed")
	}
	// Probation: two successes close it and reset the cooldown.
	b.Success()
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open after 1/2 probation successes", b.State())
	}
	if !b.Allow(t0.Add(8 * time.Second)) {
		t.Fatal("second probation trial refused")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatalf("state = %v, want closed after probation", b.State())
	}
	// Probe success while open jumps straight to half-open.
	b.Failure(t0)
	b.Failure(t0)
	b.Failure(t0)
	if b.State() != breakerOpen {
		t.Fatal("breaker did not re-trip")
	}
	b.Success()
	if b.State() != breakerHalfOpen {
		t.Fatalf("state after probe success while open = %v, want half-open", b.State())
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailThreshold: 1, OpenFor: time.Second, OpenForMax: 4 * time.Second, Probation: 1})
	t0 := time.Now()
	b.Failure(t0)
	for i := 0; i < 6; i++ { // each failed trial doubles, capped at 4s
		if !b.Allow(t0.Add(time.Duration(i+1) * 10 * time.Second)) {
			t.Fatalf("trial %d refused", i)
		}
		b.Failure(t0.Add(time.Duration(i+1) * 10 * time.Second))
	}
	b.mu.Lock()
	cd := b.cooldown
	b.mu.Unlock()
	if cd != 4*time.Second {
		t.Fatalf("cooldown = %v, want capped at 4s", cd)
	}
}

// ---- routing behavior against fake replicas ----

// fakeFleet is a set of httptest replicas with per-URL request counting and
// a mutable handler override.
type fakeFleet struct {
	servers []*httptest.Server
	hits    []atomic.Int64
	mu      sync.Mutex
	handler map[string]http.HandlerFunc // by URL; nil entry = default 200 JSON
}

func newFakeFleet(t *testing.T, n int) *fakeFleet {
	t.Helper()
	f := &fakeFleet{handler: map[string]http.HandlerFunc{}}
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f.hits[i].Add(1)
			f.mu.Lock()
			h := f.handler[f.servers[i].URL]
			f.mu.Unlock()
			if h != nil {
				h(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]string{"served_by": f.servers[i].URL, "path": r.URL.Path})
		}))
		f.servers = append(f.servers, ts)
		t.Cleanup(ts.Close)
	}
	f.hits = make([]atomic.Int64, n)
	return f
}

func (f *fakeFleet) urls() []string {
	out := make([]string, len(f.servers))
	for i, ts := range f.servers {
		out[i] = ts.URL
	}
	return out
}

func (f *fakeFleet) set(url string, h http.HandlerFunc) {
	f.mu.Lock()
	f.handler[url] = h
	f.mu.Unlock()
}

func (f *fakeFleet) totalHits() int64 {
	var n int64
	for i := range f.hits {
		n += f.hits[i].Load()
	}
	return n
}

// newTestRouter builds a Router with probing disabled (tests drive health via
// request outcomes) and fast retries.
func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func TestRouterRetriesToNextReplica(t *testing.T) {
	fleet := newFakeFleet(t, 3)
	rt, ts := newTestRouter(t, Config{Replicas: fleet.urls()})
	// The primary for this key always fails with 503; the request must land
	// on a fallback with status 200, transparently.
	body := `{"benchmark":"ckt1","scale":0.1}`
	primary := rt.ring.Primary(routeKey([]byte(body)))
	fleet.set(primary, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	})
	resp := postJSON(t, ts.URL+"/eval", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via retry", resp.StatusCode)
	}
	if up := resp.Header.Get("X-Upstream"); up == primary || up == "" {
		t.Fatalf("X-Upstream = %q; want a fallback replica, not the failing primary %q", up, primary)
	}
	if rt.metrics.retries.Value() == 0 {
		t.Error("retries counter did not move")
	}
}

func TestRouterRetriesConnectionRefused(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	urls := fleet.urls()
	rt, ts := newTestRouter(t, Config{Replicas: urls})
	body := `{"benchmark":"ckt1","scale":0.1}`
	primary := rt.ring.Primary(routeKey([]byte(body)))
	for i, u := range urls {
		if u == primary {
			fleet.servers[i].Close() // connection refused from now on
		}
	}
	resp := postJSON(t, ts.URL+"/eval", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after failing over a dead replica", resp.StatusCode)
	}
}

func TestRouterBuffersTruncatedResponse(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	rt, ts := newTestRouter(t, Config{Replicas: fleet.urls()})
	body := `{"benchmark":"ckt1","scale":0.1}`
	primary := rt.ring.Primary(routeKey([]byte(body)))
	fleet.set(primary, func(w http.ResponseWriter, r *http.Request) {
		// Promise 1000 bytes, deliver 10, die: the classic mid-stream crash.
		w.Header().Set("Content-Length", "1000")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("0123456789"))
		panic(http.ErrAbortHandler)
	})
	resp := postJSON(t, ts.URL+"/sweep", body)
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 from the fallback", resp.StatusCode)
	}
	if !strings.Contains(string(got), "served_by") {
		t.Fatalf("client received %q; want the fallback's complete body, never truncated bytes", got)
	}
	if rt.metrics.retries.Value() == 0 {
		t.Error("truncated response did not count as a retry")
	}
}

func TestRouterShedsWhenNoReplicaUsable(t *testing.T) {
	fleet := newFakeFleet(t, 1)
	rt, ts := newTestRouter(t, Config{
		Replicas: fleet.urls(),
		Breaker:  BreakerConfig{FailThreshold: 3, OpenFor: time.Minute},
	})
	fleet.servers[0].Close()
	// Three failed requests trip the only replica's breaker...
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/eval", `{"model":"m"}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("request %d status = %d, want 502 while breaker closed", i, resp.StatusCode)
		}
	}
	// ...after which the router sheds instead of dialing a dead host.
	resp := postJSON(t, ts.URL+"/eval", `{"model":"m"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 shed", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint", ra)
	}
	if rt.metrics.sheds.Value() == 0 {
		t.Error("shed counter did not move")
	}
}

func TestRouterSingleFlightsReduce(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	var builds atomic.Int64
	slow := func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/reduce" {
			builds.Add(1)
			time.Sleep(100 * time.Millisecond)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"id": "ckt1-0.1"})
	}
	for _, u := range fleet.urls() {
		fleet.set(u, slow)
	}
	rt, ts := newTestRouter(t, Config{Replicas: fleet.urls()})
	const herd = 12
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/reduce", "application/json",
				strings.NewReader(`{"benchmark":"ckt1","scale":0.1}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			if !strings.Contains(string(b), "ckt1-0.1") {
				errs <- fmt.Errorf("unexpected body %q", b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("upstream /reduce called %d times for a %d-request herd, want exactly 1", n, herd)
	}
	if got := rt.metrics.merged.Value(); got != herd-1 {
		t.Errorf("singleflight merged = %d, want %d", got, herd-1)
	}
}

func TestRouterHedgesSlowPrimary(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	rt, ts := newTestRouter(t, Config{
		Replicas:      fleet.urls(),
		Hedge:         true,
		HedgeMinDelay: 10 * time.Millisecond,
	})
	body := `{"benchmark":"ckt1","scale":0.1}`
	primary := rt.ring.Primary(routeKey([]byte(body)))
	fleet.set(primary, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond) // way past the hedge budget
		json.NewEncoder(w).Encode(map[string]string{"served_by": "slow"})
	})
	t0 := time.Now()
	resp := postJSON(t, ts.URL+"/eval", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if d := time.Since(t0); d >= 400*time.Millisecond {
		t.Errorf("hedged request took %v; the fast secondary should have won well under the slow primary's 400ms", d)
	}
	if up := resp.Header.Get("X-Upstream"); up == primary {
		t.Errorf("X-Upstream = %q (the slow primary); want the hedge winner", up)
	}
	if rt.metrics.hedges.Value() == 0 || rt.metrics.hedgeWins.Value() == 0 {
		t.Errorf("hedges = %d, wins = %d; both should have moved",
			rt.metrics.hedges.Value(), rt.metrics.hedgeWins.Value())
	}
}

func TestRouterPassesThroughClientErrors(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	for _, u := range fleet.urls() {
		fleet.set(u, func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
		})
	}
	_, ts := newTestRouter(t, Config{Replicas: fleet.urls()})
	resp := postJSON(t, ts.URL+"/eval", `{"benchmark":"nope"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 passed through without retries", resp.StatusCode)
	}
	if fleet.totalHits() != 1 {
		t.Fatalf("upstream hits = %d; 4xx must not retry", fleet.totalHits())
	}
}

func TestRouteKey(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{`{"model":"ckt1-0.1-l2-s00"}`, "ckt1-0.1-l2-s00"},
		{`{"benchmark":"ckt1","scale":0.1}`, routeKey([]byte(`{"benchmark":"ckt1","scale":0.1,"moments":0}`))},
		{`not json`, ""},
		{`{}`, ""},
	}
	for _, c := range cases {
		if got := routeKey([]byte(c.body)); got != c.want {
			t.Errorf("routeKey(%s) = %q, want %q", c.body, got, c.want)
		}
	}
	// Normalized and raw forms of one model key must route identically.
	a := routeKey([]byte(`{"benchmark":"ckt1","scale":0.1}`))
	b := routeKey([]byte(`{"benchmark":"ckt1","scale":0.1,"moments":0,"s0":0}`))
	if a == "" || a != b {
		t.Errorf("equivalent model keys route differently: %q vs %q", a, b)
	}
}

func TestRouterHealthz(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	_, ts := newTestRouter(t, Config{Replicas: fleet.urls()})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Status   string       `json:"status"`
		Usable   int          `json:"usable"`
		Replicas []probeState `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Usable != 2 || len(body.Replicas) != 2 {
		t.Fatalf("healthz body = %+v", body)
	}
}

func TestRouterMetricsEndpoint(t *testing.T) {
	fleet := newFakeFleet(t, 1)
	_, ts := newTestRouter(t, Config{Replicas: fleet.urls()})
	resp := postJSON(t, ts.URL+"/eval", `{"model":"m"}`)
	resp.Body.Close()
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", mresp.StatusCode)
	}
	b, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"pgrouter_requests_total", "pgrouter_upstream_attempts_total", "pgrouter_replicas_usable"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestProberMarksReplicaDown(t *testing.T) {
	fleet := newFakeFleet(t, 2)
	urls := fleet.urls()
	fleet.set(urls[0], func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	rt, err := New(Config{Replicas: urls, ProbeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if !rt.replicas[urls[0]].usable(time.Now()) && rt.replicas[urls[1]].usable(time.Now()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the draining replica unusable (or marked the healthy one)")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The draining replica must not appear among any key's candidates.
	for _, rep := range rt.candidates("any-key") {
		if rep.addr == urls[0] {
			t.Fatal("draining replica still among candidates")
		}
	}
}

func TestLatencySamplerPercentile(t *testing.T) {
	s := newLatencySampler(100)
	if s.percentile(0.95) != 0 {
		t.Fatal("empty sampler should report 0")
	}
	for i := 1; i <= 100; i++ {
		s.observe(time.Duration(i) * time.Millisecond)
	}
	p95 := s.percentile(0.95)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want ~95ms", p95)
	}
}
