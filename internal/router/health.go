package router

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Prober defaults; see Config.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultProbeTimeout  = 2 * time.Second
)

// replica is the router's view of one backend: its breaker plus the last
// probe verdict.
type replica struct {
	addr    string // base URL, e.g. http://127.0.0.1:8081
	breaker *Breaker

	mu         sync.Mutex
	probedOK   bool      // last /healthz answered 200
	probeErr   string    // why not, for /healthz reporting
	lastProbe  time.Time // when
	everProbed bool

	inflight atomic.Int64 // requests currently proxied to this replica
}

// usable reports whether the router may route a request to this replica right
// now: the breaker admits it, and the last health probe (if any has run)
// found it ready. An unprobed replica is usable — at cold start the router
// routes optimistically and lets outcomes train the breaker rather than
// failing everything until the first probe tick.
func (rep *replica) usable(now time.Time) bool {
	rep.mu.Lock()
	probedOK, everProbed := rep.probedOK, rep.everProbed
	rep.mu.Unlock()
	if everProbed && !probedOK {
		// The prober keeps feeding the breaker while the replica is down, so
		// breaker state and probe verdict converge; the explicit check makes
		// the router stop routing after ONE failed probe instead of waiting
		// for the breaker's failure threshold.
		return false
	}
	return rep.breaker.Allow(now)
}

// setProbe records a probe verdict and trains the breaker with it.
func (rep *replica) setProbe(ok bool, reason string, now time.Time) {
	rep.mu.Lock()
	rep.probedOK = ok
	rep.probeErr = reason
	rep.lastProbe = now
	rep.everProbed = true
	rep.mu.Unlock()
	if ok {
		rep.breaker.Success()
	} else {
		rep.breaker.Failure(now)
	}
}

// probeState is the /healthz view of one replica.
type probeState struct {
	Addr      string    `json:"addr"`
	Usable    bool      `json:"usable"`
	Breaker   string    `json:"breaker"`
	ProbedOK  bool      `json:"probed_ok"`
	ProbeErr  string    `json:"probe_err,omitempty"`
	LastProbe time.Time `json:"last_probe,omitempty"`
	Inflight  int64     `json:"inflight"`
}

func (rep *replica) state(now time.Time) probeState {
	rep.mu.Lock()
	st := probeState{
		Addr:      rep.addr,
		Breaker:   rep.breaker.State().String(),
		ProbedOK:  rep.probedOK,
		ProbeErr:  rep.probeErr,
		LastProbe: rep.lastProbe,
		Inflight:  rep.inflight.Load(),
	}
	probedOK, everProbed := rep.probedOK, rep.everProbed
	rep.mu.Unlock()
	st.Usable = (!everProbed || probedOK) && rep.breaker.State() != breakerOpen
	_ = now
	return st
}

// prober actively polls every replica's /healthz on a fixed interval,
// feeding verdicts into the breakers. Active probing is what rehabilitates a
// recovered replica without risking client traffic: the breaker's half-open
// probation is satisfied by probe successes, so by the time real requests
// return, the replica has already proven itself.
type prober struct {
	client   *http.Client
	replicas []*replica
	interval time.Duration
	log      *slog.Logger
	onProbe  func(rep *replica, ok bool) // metrics hook; may be nil

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

func newProber(replicas []*replica, interval, timeout time.Duration, log *slog.Logger, onProbe func(*replica, bool)) *prober {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	return &prober{
		client:   &http.Client{Timeout: timeout},
		replicas: replicas,
		interval: interval,
		log:      log,
		onProbe:  onProbe,
		stop:     make(chan struct{}),
	}
}

// run probes until Close; one goroutine per replica so a hung replica's
// probe timeout never delays the others' cadence.
func (p *prober) run() {
	for _, rep := range p.replicas {
		rep := rep
		p.done.Add(1)
		go func() {
			defer p.done.Done()
			t := time.NewTicker(p.interval)
			defer t.Stop()
			p.probe(rep) // immediately, not an interval from now
			for {
				select {
				case <-p.stop:
					return
				case <-t.C:
					p.probe(rep)
				}
			}
		}()
	}
}

func (p *prober) probe(rep *replica) {
	//pgmor:detach the prober owns its own schedule; probes are not tied to any client request
	ctx, cancel := context.WithTimeout(context.Background(), p.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.addr+"/healthz", nil)
	if err != nil {
		rep.setProbe(false, err.Error(), time.Now())
		return
	}
	resp, err := p.client.Do(req)
	now := time.Now()
	if err != nil {
		wasOK := rep.stateOK()
		rep.setProbe(false, err.Error(), now)
		if wasOK {
			p.log.Warn("replica probe failed", "replica", rep.addr, "err", err)
		}
		p.notify(rep, false)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		wasOK := rep.stateOK()
		rep.setProbe(false, resp.Status, now)
		if wasOK {
			p.log.Warn("replica not ready", "replica", rep.addr, "status", resp.Status)
		}
		p.notify(rep, false)
		return
	}
	if !rep.stateOK() {
		p.log.Info("replica healthy", "replica", rep.addr)
	}
	rep.setProbe(true, "", now)
	p.notify(rep, true)
}

func (p *prober) notify(rep *replica, ok bool) {
	if p.onProbe != nil {
		p.onProbe(rep, ok)
	}
}

// stateOK reads the last probe verdict (true before any probe has run).
func (rep *replica) stateOK() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return !rep.everProbed || rep.probedOK
}

// close stops the probe loops and waits for them.
func (p *prober) close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.done.Wait()
}
