package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// newBackend serves a fixed 4 KiB body so byte-count faults have something to
// cut.
func newBackend(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	body := strings.Repeat("0123456789abcdef", 256) // 4096 bytes
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	u, _ := url.Parse(ts.URL)
	return ts, u.Host
}

func newProxy(t *testing.T, upstream string) *Proxy {
	t.Helper()
	p, err := New(upstream)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// client returns an http.Client that never reuses connections, so each
// request maps to exactly one proxy connection index.
func client() *http.Client {
	return &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
}

func TestPassthrough(t *testing.T) {
	_, host := newBackend(t)
	p := newProxy(t, host)
	resp, err := client().Get(p.URL())
	if err != nil {
		t.Fatalf("passthrough GET: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(b) != 4096 {
		t.Fatalf("body = %d bytes, want 4096", len(b))
	}
	if p.Accepted() != 1 {
		t.Fatalf("accepted = %d, want 1", p.Accepted())
	}
}

func TestRefuse(t *testing.T) {
	_, host := newBackend(t)
	p := newProxy(t, host)
	p.SetRule(0, Rule{Refuse: true})
	if _, err := client().Get(p.URL()); err == nil {
		t.Fatal("refused connection yielded a response")
	}
	// Connection 1 has no rule: passes through.
	resp, err := client().Get(p.URL())
	if err != nil {
		t.Fatalf("connection after the refused one: %v", err)
	}
	resp.Body.Close()
}

func TestDelay(t *testing.T) {
	_, host := newBackend(t)
	p := newProxy(t, host)
	const d = 150 * time.Millisecond
	p.SetRule(0, Rule{Delay: d})
	t0 := time.Now()
	resp, err := client().Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := time.Since(t0); got < d {
		t.Fatalf("request completed in %v, want ≥ %v of injected latency", got, d)
	}
}

// TestTruncateMidBody pins the fault the router's buffering defends against:
// headers arrive fine, the body dies partway, and the client read errors
// instead of silently returning short data.
func TestTruncateMidBody(t *testing.T) {
	_, host := newBackend(t)
	p := newProxy(t, host)
	p.SetRule(0, Rule{TruncateAfterBytes: 600}) // headers ≈ 120 B + partial body
	resp, err := client().Get(p.URL())
	if err != nil {
		t.Fatalf("GET (headers should survive truncation at 600): %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read of truncated body succeeded with %d bytes; want an error", len(b))
	}
	if len(b) >= 4096 {
		t.Fatalf("received %d bytes despite truncation", len(b))
	}
}

func TestResetMidBody(t *testing.T) {
	_, host := newBackend(t)
	p := newProxy(t, host)
	p.SetRule(0, Rule{ResetAfterBytes: 600})
	resp, err := client().Get(p.URL())
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("read of reset body succeeded; want connection error")
	}
}

func TestFallbackRefusesAll(t *testing.T) {
	_, host := newBackend(t)
	p := newProxy(t, host)
	p.SetFallback(Rule{Refuse: true})
	for i := 0; i < 3; i++ {
		if _, err := client().Get(p.URL()); err == nil {
			t.Fatalf("connection %d not refused under fallback rule", i)
		}
	}
	// Lifting the fallback restores service.
	p.SetFallback(Rule{})
	resp, err := client().Get(p.URL())
	if err != nil {
		t.Fatalf("after lifting fallback: %v", err)
	}
	resp.Body.Close()
}

func TestKillActive(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1000000")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		time.Sleep(2 * time.Second) // hold the connection with bytes pending
	}))
	defer slow.Close()
	u, _ := url.Parse(slow.URL)
	p := newProxy(t, u.Host)

	errc := make(chan error, 1)
	go func() {
		resp, err := client().Get(p.URL())
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.ReadAll(resp.Body)
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.KillActive() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no active connection to kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("client read survived KillActive; want a mid-stream error")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("client read did not fail after KillActive")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	_, host := newBackend(t)
	p, err := New(host)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	if _, err := client().Get(p.URL()); err == nil {
		t.Fatal("closed proxy still accepting")
	}
}
