// Package chaos is a deterministic fault-injection TCP proxy for testing the
// router tier. A Proxy sits between the router and one replica and injects
// faults per accepted connection: outright refusal, added latency, a hard
// reset (RST) after N upstream bytes, or a clean truncation (early FIN) after
// N upstream bytes.
//
// Determinism is the point: faults are keyed by the accepted-connection
// index, so a test declares "connection 2 dies after 512 bytes" and gets
// exactly that on every run — no probabilistic fault schedules, no flaky
// reproductions.
package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Rule is the fault injected into one connection. The zero Rule passes the
// connection through untouched.
type Rule struct {
	// Refuse closes the client connection immediately on accept, before any
	// bytes flow — the router sees connection refused/reset at request time.
	Refuse bool
	// Delay sleeps before any upstream byte is relayed, simulating a slow
	// replica (hedge-trigger territory).
	Delay time.Duration
	// ResetAfterBytes hard-resets (RST) the client connection after relaying
	// this many upstream→client bytes. 0 = never.
	ResetAfterBytes int64
	// TruncateAfterBytes half-closes the client connection (clean FIN) after
	// relaying this many upstream→client bytes, simulating a replica process
	// dying mid-response. 0 = never.
	TruncateAfterBytes int64
}

// Proxy is one chaos proxy instance: a local listener forwarding to a single
// upstream address.
type Proxy struct {
	upstream string
	ln       net.Listener

	mu       sync.Mutex
	rules    map[int64]Rule // by accepted-connection index
	fallback Rule           // applied when no per-index rule exists
	conns    map[int64]net.Conn

	accepted atomic.Int64
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to upstream
// (host:port). Close it when done.
func New(upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		rules:    make(map[int64]Rule),
		conns:    make(map[int64]net.Conn),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Accepted returns how many connections the proxy has accepted so far.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// SetRule installs the fault for the n-th accepted connection (0-based).
func (p *Proxy) SetRule(conn int64, r Rule) {
	p.mu.Lock()
	p.rules[conn] = r
	p.mu.Unlock()
}

// SetFallback installs the fault applied to connections with no per-index
// rule — e.g. Rule{Refuse: true} turns the proxy into a dead replica.
func (p *Proxy) SetFallback(r Rule) {
	p.mu.Lock()
	p.fallback = r
	p.mu.Unlock()
}

// KillActive hard-closes every currently relayed connection, simulating the
// replica process dying with requests in flight. New connections still follow
// the rules (combine with SetFallback(Rule{Refuse: true}) for a full crash).
func (p *Proxy) KillActive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not FIN: in-flight reads fail immediately
		}
		c.Close()
		n++
	}
	return n
}

// Close stops the listener and tears down every connection.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.KillActive()
	p.wg.Wait()
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := p.accepted.Add(1) - 1
		p.mu.Lock()
		rule, ok := p.rules[idx]
		if !ok {
			rule = p.fallback
		}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(conn, idx, rule)
	}
}

func (p *Proxy) handle(client net.Conn, idx int64, rule Rule) {
	defer p.wg.Done()
	if rule.Refuse {
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		client.Close()
		return
	}
	upstream, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.track(idx, client)
	defer p.untrack(idx)
	defer client.Close()
	defer upstream.Close()

	done := make(chan struct{}, 2)
	// client → upstream: always clean passthrough (faults model the replica
	// side failing, not the router's request getting mangled).
	go func() {
		io.Copy(upstream, client)
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// upstream → client: the fault path.
	go func() {
		if rule.Delay > 0 {
			time.Sleep(rule.Delay)
		}
		p.relay(client, upstream, rule)
		done <- struct{}{}
	}()
	<-done
	<-done
}

// relay copies upstream→client, enforcing the rule's byte-count faults.
func (p *Proxy) relay(client, upstream net.Conn, rule Rule) {
	limit := int64(-1)
	reset := false
	if rule.ResetAfterBytes > 0 {
		limit, reset = rule.ResetAfterBytes, true
	}
	if rule.TruncateAfterBytes > 0 && (limit < 0 || rule.TruncateAfterBytes < limit) {
		limit, reset = rule.TruncateAfterBytes, false
	}
	if limit < 0 {
		io.Copy(client, upstream)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		return
	}
	io.CopyN(client, upstream, limit)
	if reset {
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	client.Close()
	upstream.Close()
}

func (p *Proxy) track(idx int64, c net.Conn) {
	p.mu.Lock()
	p.conns[idx] = c
	p.mu.Unlock()
}

func (p *Proxy) untrack(idx int64) {
	p.mu.Lock()
	delete(p.conns, idx)
	p.mu.Unlock()
}
