package repro

import (
	"repro/internal/passivity"
	"repro/internal/sim"
)

// Integration methods for transient simulation.
type IntegrationMethod = sim.Method

// Integration method values.
const (
	BackwardEuler = sim.BackwardEuler
	Trapezoidal   = sim.Trapezoidal
)

// Source waveforms for transient inputs.
type (
	// DC is a constant source.
	DC = sim.DC
	// Step switches from 0 to Amplitude at Delay.
	Step = sim.Step
	// Pulse is a SPICE-style trapezoidal pulse train.
	Pulse = sim.Pulse
	// Sine is a sinusoidal source.
	Sine = sim.Sine
	// PWL is a piecewise-linear waveform.
	PWL = sim.PWL
)

// NewPWL validates and constructs a piecewise-linear source.
func NewPWL(t, v []float64) (*PWL, error) { return sim.NewPWL(t, v) }

// Sources bundles one Source per port into an Input.
func Sources(srcs []Source) Input { return sim.Sources(srcs) }

// UniformInput drives every port with the same waveform.
func UniformInput(s Source) Input { return sim.UniformInput(s) }

// ACPoint is one frequency sample of a transfer entry.
type ACPoint = sim.ACPoint

// ACSweep evaluates H[row][col](jω) over a log-spaced grid — the Fig. 5
// style frequency sweep.
func ACSweep(sys System, row, col int, wMin, wMax float64, points int) ([]ACPoint, error) {
	return sim.ACSweepEntry(sys, row, col, wMin, wMax, points)
}

// RelativeError computes |ref - approx|/|ref| pointwise over two sweeps.
func RelativeError(ref, approx []ACPoint) ([]float64, error) {
	return sim.RelativeError(ref, approx)
}

// PassivityCheckOptions configures CheckPassivity.
type PassivityCheckOptions = passivity.CheckOptions

// AdaptiveOptions configures error-controlled transient integration.
type AdaptiveOptions = sim.AdaptiveOptions

// AdaptiveResult extends TransientResult with step-size telemetry.
type AdaptiveResult = sim.AdaptiveResult

// SimulateROMAdaptive integrates a block-diagonal ROM with backward Euler
// under step-doubling local error control.
func SimulateROMAdaptive(rom *BlockDiagROM, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return sim.SimulateBlockDiagAdaptive(rom, opts)
}

// SimulateDenseROMAdaptive integrates a dense ROM adaptively.
func SimulateDenseROMAdaptive(rom *DenseROM, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return sim.SimulateDenseAdaptive(rom, opts)
}
