package repro

import (
	"bytes"
	"math"
	"math/cmplx"
	"strings"
	"testing"
)

// TestPublicAPIWorkflow drives the whole documented user journey through
// the facade: benchmark → build → reduce → verify → save/load → simulate.
func TestPublicAPIWorkflow(t *testing.T) {
	cfg, err := Benchmark("ckt1", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rom, err := ReduceBDSM(sys, BDSMOptions{Moments: 6})
	if err != nil {
		t.Fatal(err)
	}

	// Frequency-domain agreement.
	s := complex(0, 1e9)
	hx, err := sys.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := rom.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hx.Data {
		if cmplx.Abs(hx.Data[i]-hr.Data[i]) > 1e-6*(1+cmplx.Abs(hx.Data[i])) {
			t.Fatal("ROM transfer mismatch")
		}
	}

	// Moments through the facade.
	mo, err := Moments(sys, DefaultS0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mo) != 3 || mo[0].MaxAbs() == 0 {
		t.Fatal("moments empty")
	}

	// Round trip.
	var buf bytes.Buffer
	if err := SaveROM(&buf, rom); err != nil {
		t.Fatal(err)
	}
	rom2, err := LoadROM(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Transient on the reloaded ROM vs the full model.
	opts := TransientOptions{
		Method: Trapezoidal, Dt: 1e-11, T: 1e-9,
		Input: UniformInput(Step{Amplitude: 1e-3, Delay: 1e-10}),
	}
	full, err := SimulateFull(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	red, err := SimulateROM(rom2, opts)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.0
	for k := range full.Y {
		for _, v := range full.Y[k] {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
	}
	for k := range full.Y {
		for j := range full.Y[k] {
			if math.Abs(full.Y[k][j]-red.Y[k][j]) > 0.01*scale {
				t.Fatalf("transient mismatch at step %d", k)
			}
		}
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	cfg, err := Benchmark("ckt1", 0.12)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReducePRIMA(sys, BaselineOptions{Moments: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReduceEKS(sys, nil, BaselineOptions{Moments: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReduceSVDMOR(sys, 0.6, BaselineOptions{Moments: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPINetlistPath(t *testing.T) {
	netlist := `tiny grid
R1 a b 1
R2 b 0 2
C1 a 0 1p
C2 b 0 2p
I1 a 0 1m
.probe v(a) v(b)
.end
`
	nl, err := ParseNetlist(strings.NewReader(netlist))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	n, m, p := sys.Dims()
	if n != 2 || m != 1 || p != 2 {
		t.Fatalf("dims %d/%d/%d", n, m, p)
	}
	rom, err := ReduceBDSM(sys, BDSMOptions{Moments: 2})
	if err != nil {
		t.Fatal(err)
	}
	// DC gain check: v(a) for 1A draw = -(R1+R2) in load convention.
	h, err := rom.Eval(complex(0, 1e3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(h.At(0, 0))+3) > 1e-6 {
		t.Fatalf("DC gain %v, want ≈ -3 (load draws current)", h.At(0, 0))
	}
}

func TestPublicAPIPassivityAndImpedanceView(t *testing.T) {
	cfg, err := Benchmark("ckt1", 0.12)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys := ImpedanceView(built)
	// ckt1's matched moment count (Table II); the scaled instance's poles
	// sit ∝ scale³ below the paper-size ones, so fewer moments than the
	// benchmark prescribes no longer clears the 1e-6 sweep bound.
	rom, err := ReduceBDSM(sys, BDSMOptions{Moments: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPassivity(rom, PassivityCheckOptions{Samples: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable {
		t.Fatal("impedance ROM unstable")
	}
	// ACSweep + RelativeError through the facade.
	ref, err := ACSweep(sys, 0, 0, 1e6, 1e12, 11)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ACSweep(rom, 0, 0, 1e6, 1e12, 11)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := RelativeError(ref, approx)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if ref[i].Omega < 1e10 && e > 1e-6 {
			t.Fatalf("facade sweep error %.3e at ω=%.3e", e, ref[i].Omega)
		}
	}
}
