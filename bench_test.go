// Benchmarks regenerating every table and figure of the paper plus the
// ablations called out in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// Scales default to small grids so the suite completes quickly; use
// cmd/pgbench -scale 1 for paper-size instances. Custom metrics expose the
// paper's cost quantities (orthonormalization dot products, ROM nonzeros,
// pencil solves) alongside wall-clock time.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/sim"
	"repro/internal/sparse"
)

const benchScale = 0.2

func buildBench(b *testing.B, name string, scale float64) *lti.SparseSystem {
	b.Helper()
	cfg, err := Benchmark(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := BuildGrid(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkTableI regenerates the measured Table I scheme comparison.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.TableI(bench.Config{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("incomplete Table I")
		}
	}
}

// BenchmarkTableII regenerates Table II rows; each sub-benchmark is one
// circuit so `-bench TableII/ckt1` isolates a row.
func BenchmarkTableII(b *testing.B) {
	for _, ckt := range []string{"ckt1", "ckt2", "ckt3"} {
		b.Run(ckt, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.TableII(bench.Config{Scale: benchScale}, []string{ckt})
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				bdsm := row.Scheme("BDSM")
				prima := row.Scheme("PRIMA")
				if bdsm.Err != nil {
					b.Fatal(bdsm.Err)
				}
				b.ReportMetric(float64(bdsm.MORTime.Microseconds()), "bdsm-µs")
				if !prima.BrokeDown {
					b.ReportMetric(float64(prima.MORTime.Microseconds()), "prima-µs")
				}
			}
		})
	}
}

// BenchmarkFig4 regenerates the ROM structure comparison.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4(bench.Config{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BDSMGrPct, "bdsm-Gr-%")
		b.ReportMetric(res.PRIMAGrPct, "prima-Gr-%")
	}
}

// BenchmarkFig5 regenerates the accuracy sweep (both panels).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig5(bench.Config{Scale: benchScale, SweepPoints: 21})
		if err != nil {
			b.Fatal(err)
		}
		e, err := res.MaxRelErrBelow("BDSM", 1e10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(e, "bdsm-relerr")
	}
}

// BenchmarkAblationOrthoCost isolates the paper's central cost claim: the
// clustered orthonormalization of BDSM versus PRIMA's global one, measured
// in long-vector dot products on identical systems.
func BenchmarkAblationOrthoCost(b *testing.B) {
	sys := buildBench(b, "ckt1", benchScale)
	b.Run("BDSM", func(b *testing.B) {
		var dots int64
		for i := 0; i < b.N; i++ {
			var st core.Stats
			if _, err := core.Reduce(sys, core.Options{Moments: 6, Stats: &st}); err != nil {
				b.Fatal(err)
			}
			dots = st.Ortho.DotProducts
		}
		b.ReportMetric(float64(dots), "dots")
	})
	b.Run("PRIMA", func(b *testing.B) {
		var dots int64
		for i := 0; i < b.N; i++ {
			var st baseline.Stats
			if _, err := baseline.PRIMA(sys, baseline.Options{Moments: 6, MemoryBudget: -1, Stats: &st}); err != nil {
				b.Fatal(err)
			}
			dots = st.Ortho.DotProducts
		}
		b.ReportMetric(float64(dots), "dots")
	})
}

// BenchmarkAblationROMStorage measures the m·l² versus O(m²l²) nonzero
// storage claim.
func BenchmarkAblationROMStorage(b *testing.B) {
	sys := buildBench(b, "ckt1", benchScale)
	bdsm, err := core.Reduce(sys, core.Options{Moments: 6})
	if err != nil {
		b.Fatal(err)
	}
	prima, err := baseline.PRIMA(sys, baseline.Options{Moments: 6, MemoryBudget: -1})
	if err != nil {
		b.Fatal(err)
	}
	_, gb, _, _ := bdsm.NNZ()
	_, gp, _, _ := prima.NNZ()
	for i := 0; i < b.N; i++ {
		_, _, _, _ = bdsm.NNZ()
	}
	b.ReportMetric(float64(gb), "bdsm-Gr-nnz")
	b.ReportMetric(float64(gp), "prima-Gr-nnz")
}

// BenchmarkAblationROMSolve measures per-frequency ROM evaluation: the
// O(m·l³) block solve versus the O(m³l³) dense solve, swept over port count.
func BenchmarkAblationROMSolve(b *testing.B) {
	for _, ports := range []int{8, 16, 32} {
		cfg, err := Benchmark("ckt1", 0.3)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Ports = ports
		sys, err := BuildGrid(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rom, err := core.Reduce(sys, core.Options{Moments: 4})
		if err != nil {
			b.Fatal(err)
		}
		denseROM := rom.ToDense()
		s := complex(0, 1e9)
		b.Run(fmt.Sprintf("block/m=%d", ports), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rom.Eval(s); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dense/m=%d", ports), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := denseROM.Eval(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelSim measures per-block parallel transient
// simulation against serial on the same ROM.
func BenchmarkAblationParallelSim(b *testing.B) {
	sys := buildBench(b, "ckt2", benchScale)
	rom, err := core.Reduce(sys, core.Options{Moments: 6})
	if err != nil {
		b.Fatal(err)
	}
	mkOpts := func(workers int) sim.TransientOptions {
		return sim.TransientOptions{
			Dt: 1e-11, T: 2e-9, Workers: workers,
			Input: sim.UniformInput(sim.Step{Amplitude: 1e-3, Delay: 1e-10}),
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.SimulateBlockDiag(rom, mkOpts(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReuse compares answering a new input pattern with a
// reusable BDSM ROM (evaluate only) versus EKS (rebuild then evaluate) —
// the Table I reusability row in time units.
func BenchmarkAblationReuse(b *testing.B) {
	sys := buildBench(b, "ckt1", benchScale)
	_, m, _ := sys.Dims()
	rom, err := core.Reduce(sys, core.Options{Moments: 6})
	if err != nil {
		b.Fatal(err)
	}
	s := complex(0, 1e9)
	b.Run("BDSM-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rom.Eval(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EKS-rebuild", func(b *testing.B) {
		pattern := make([]float64, m)
		for i := 0; i < b.N; i++ {
			pattern[i%m] = float64(i%3 + 1) // the input changed → rebuild
			eks, err := baseline.EKS(sys, pattern, baseline.Options{Moments: 6})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eks.ResponseEval(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMultipoint compares single-point and multi-point BDSM.
func BenchmarkAblationMultipoint(b *testing.B) {
	sys := buildBench(b, "ckt1", benchScale)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Reduce(sys, core.Options{S0: 1e9, Moments: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("threepoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Reduce(sys, core.Options{Points: []float64{1e8, 1e10, 1e12}, Moments: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAMD compares sparse LU fill and time across orderings on
// the MNA pencil — the substrate choice that keeps factorization feasible.
func BenchmarkAblationAMD(b *testing.B) {
	sys := buildBench(b, "ckt3", benchScale)
	pencil := sys.Pencil(1e9)
	for _, ord := range []sparse.Ordering{sparse.OrderNatural, sparse.OrderRCM, sparse.OrderAMD} {
		b.Run(ord.String(), func(b *testing.B) {
			var fill int
			for i := 0; i < b.N; i++ {
				lu, err := sparse.FactorLU(pencil, sparse.LUOptions{Ordering: ord})
				if err != nil {
					b.Fatal(err)
				}
				fill = lu.NNZ()
			}
			b.ReportMetric(float64(fill), "fill-nnz")
		})
	}
}

// BenchmarkAblationBackend compares direct-LU and iterative (streaming)
// pencil backends inside BDSM — the paper's skip-the-factorization mode.
func BenchmarkAblationBackend(b *testing.B) {
	sys := buildBench(b, "ckt1", benchScale)
	n, _, _ := sys.Dims()
	b.Run("lu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Reduce(sys, core.Options{Moments: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bicgstab", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := core.Options{Moments: 4, Backend: krylov.BackendIterative,
				Iter: sparse.IterOptions{Tol: 1e-12, MaxIter: 20 * n}}
			if _, err := core.Reduce(sys, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkROMSerialization measures ROM save/load round-trips.
func BenchmarkROMSerialization(b *testing.B) {
	sys := buildBench(b, "ckt1", benchScale)
	rom, err := core.Reduce(sys, core.Options{Moments: 6})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := lti.SaveBlockDiag(io.Discard, rom); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseLU is the substrate microbenchmark: factor+solve of a
// power-grid pencil.
func BenchmarkSparseLU(b *testing.B) {
	sys := buildBench(b, "ckt2", benchScale)
	pencil := sys.Pencil(1e9)
	n, _ := pencil.Dims()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.Run("factor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparse.FactorLU(pencil, sparse.LUOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	lu, err := sparse.FactorLU(pencil, sparse.LUOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("solve", func(b *testing.B) {
		x := make([]float64, n)
		for i := 0; i < b.N; i++ {
			if err := lu.Solve(x, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
