// Package repro is a Go reproduction of "A Block-Diagonal Structured Model
// Reduction Scheme for Power Grid Networks" (Zhang, Hu, Cheng, Wong —
// DATE 2011): BDSM model order reduction together with the full substrate it
// needs — sparse/dense linear algebra, MNA circuit stamping, a synthetic
// power-grid benchmark generator, the PRIMA/EKS/SVDMOR baselines, passivity
// analysis, and transient/AC simulation.
//
// Quick start (see examples/quickstart):
//
//	cfg, _ := repro.Benchmark("ckt1", 0.25)   // scaled industrial analogue
//	sys, _ := repro.BuildGrid(cfg)             // MNA descriptor system
//	rom, _ := repro.ReduceBDSM(sys, repro.BDSMOptions{Moments: 6})
//	h, _   := rom.Eval(complex(0, 1e9))        // block-diagonal ROM, reusable
//
// The package re-exports the user-facing types of the internal subsystems;
// see DESIGN.md for the architecture and EXPERIMENTS.md for the measured
// reproduction of every table and figure in the paper.
package repro

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/lti"
	"repro/internal/passivity"
	"repro/internal/sim"
	"repro/internal/ward"
)

// System is any LTI realization that can evaluate its transfer matrix.
type System = lti.System

// SparseModel is a large sparse descriptor model C·x' = G·x + B·u, y = L·x
// in the paper's sign convention.
type SparseModel = lti.SparseSystem

// DenseROM is a small dense descriptor reduced-order model (PRIMA-style).
type DenseROM = lti.DenseSystem

// BlockDiagROM is the sparse block-diagonal reduced-order model produced by
// BDSM (eq. 14 of the paper): reusable, cheap to store and simulate.
type BlockDiagROM = lti.BlockDiagSystem

// ROMBlock is one diagonal block of a BlockDiagROM.
type ROMBlock = lti.Block

// ModalROM is the diagonalized (pole–residue) fast path of a BlockDiagROM:
// built once with Modalize, it evaluates transfer entries in O(q) flops with
// no per-frequency factorization, and simulates transients with exact
// per-mode exponentials. Blocks whose pencils defeat the diagonalization
// transparently fall back to LU evaluation.
type ModalROM = lti.ModalSystem

// BDSMOptions configures ReduceBDSM; see core.Options for field docs.
type BDSMOptions = core.Options

// BDSMStats reports measured reduction cost.
type BDSMStats = core.Stats

// WardOptions configures the exact Ward/Schur pre-reduction stage; it runs
// inside ReduceBDSM when BDSMOptions.WardReduce is set, or standalone via
// ReduceWard.
type WardOptions = ward.Options

// WardStats reports the pre-reduction stage's partition shape and cost
// (also surfaced as BDSMStats.Ward).
type WardStats = ward.Stats

// WardResult is a standalone pre-reduction outcome: the (exactly
// equivalent) reduced system plus the partition that produced it.
type WardResult = ward.Result

// BaselineOptions configures the PRIMA/EKS/SVDMOR baselines.
type BaselineOptions = baseline.Options

// EKSROM is the input-dependent extended-Krylov ROM (not reusable).
type EKSROM = baseline.EKSROM

// SVDMORROM is the terminal-reduction ROM H ≈ U·Ĥ·Vᵀ.
type SVDMORROM = baseline.SVDMORROM

// GridConfig parameterizes the synthetic power-grid generator (Fig. 3
// topology: package R–L pads, multi-layer mesh, via arrays, load ports).
type GridConfig = grid.Config

// GridModel is a stamped power-grid descriptor model.
type GridModel = grid.Model

// MultiscaleConfig parameterizes the transmission+distribution generator: a
// purely resistive backbone ring (Ward-eliminable in full) feeding RC
// distribution subgrids — the scale-ladder instance family of
// `pgbench -exp scale`.
type MultiscaleConfig = grid.MultiscaleConfig

// MultiscaleBenchmark sizes a MultiscaleConfig to roughly the requested
// total node count with a bounded port set.
func MultiscaleBenchmark(nodes int) (MultiscaleConfig, error) {
	return grid.MultiscaleBenchmark(nodes)
}

// Netlist is an RLC circuit netlist.
type Netlist = circuit.Netlist

// MNA is the assembled modified-nodal-analysis model of a netlist.
type MNA = circuit.MNA

// TransientOptions configures fixed-step transient simulation.
type TransientOptions = sim.TransientOptions

// TransientResult holds simulated output waveforms.
type TransientResult = sim.Result

// Source is a scalar waveform u(t); see sim for DC/Step/Pulse/Sine/PWL.
type Source = sim.Source

// Input drives all ports of a transient simulation.
type Input = sim.Input

// PassivityReport is the result of a passivity check.
type PassivityReport = passivity.Report

// StandardSystem is a standard state-space model used in passivity work.
type StandardSystem = passivity.StandardSystem

// ErrBudgetExceeded marks a baseline scheme breaking down on memory, as
// PRIMA/SVDMOR do on the paper's largest benchmarks.
var ErrBudgetExceeded = baseline.ErrBudgetExceeded

// DefaultS0 is the default Krylov expansion point (rad/s).
const DefaultS0 = core.DefaultS0

// Benchmark returns the configuration of a Table II analogue (ckt1..ckt5)
// geometrically scaled by scale ∈ (0, 1].
func Benchmark(name string, scale float64) (GridConfig, error) {
	return grid.Benchmark(name, scale)
}

// BenchmarkNames lists the Table II benchmark identifiers.
func BenchmarkNames() []string { return grid.Names() }

// BuildGrid stamps a power-grid configuration into a descriptor system.
func BuildGrid(cfg GridConfig) (*SparseModel, error) {
	model, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	return lti.NewSparseSystem(model.C, model.G, model.B, model.L)
}

// ParseNetlist reads a SPICE-subset netlist.
func ParseNetlist(r io.Reader) (*Netlist, error) { return circuit.Parse(r) }

// FromNetlist assembles a netlist into a descriptor system via MNA.
func FromNetlist(nl *Netlist) (*SparseModel, error) {
	m, err := circuit.BuildMNA(nl)
	if err != nil {
		return nil, err
	}
	return FromMNA(m)
}

// FromMNA wraps an assembled MNA model into a descriptor system.
func FromMNA(m *MNA) (*SparseModel, error) {
	return lti.NewSparseSystem(m.C, m.G, m.B, m.L)
}

// ImpedanceView returns the system with inputs negated so H(s) is the
// positive port impedance matrix — required before passivity analysis of
// grids whose loads draw (rather than inject) current.
func ImpedanceView(sys *SparseModel) *SparseModel { return sys.ImpedanceView() }

// ReduceBDSM runs the paper's block-diagonal structured reduction
// (Algorithm 1) and returns the block-diagonal ROM.
func ReduceBDSM(sys *SparseModel, opts BDSMOptions) (*BlockDiagROM, error) {
	return core.Reduce(sys, opts)
}

// ReduceWard runs the Ward/Schur pre-reduction alone: static states (no
// capacitance, source, or probe) are eliminated through a sparse Schur
// complement, leaving a smaller system with the identical transfer matrix.
func ReduceWard(sys *SparseModel, opts WardOptions) (*WardResult, error) {
	return ward.Reduce(sys, opts)
}

// ReducePRIMA runs the PRIMA baseline (dense size-m·l ROM).
func ReducePRIMA(sys *SparseModel, opts BaselineOptions) (*DenseROM, error) {
	return baseline.PRIMA(sys, opts)
}

// ReduceEKS runs the EKS baseline for the excitation pattern u0 (nil means
// unit impulses on all ports). The resulting ROM is not reusable.
func ReduceEKS(sys *SparseModel, u0 []float64, opts BaselineOptions) (*EKSROM, error) {
	return baseline.EKS(sys, u0, opts)
}

// ReduceSVDMOR runs the SVDMOR baseline with port-compression ratio alpha.
func ReduceSVDMOR(sys *SparseModel, alpha float64, opts BaselineOptions) (*SVDMORROM, error) {
	return baseline.SVDMOR(sys, alpha, opts)
}

// Modalize diagonalizes each ROM block once, returning the evaluation fast
// path; see ModalROM.
func Modalize(rom *BlockDiagROM) (*ModalROM, error) { return rom.Modalize() }

// SaveModalROM serializes a ROM together with its modal form; LoadModalROM
// (or the serving layer's store) recovers both without re-diagonalizing.
func SaveModalROM(w io.Writer, ms *ModalROM) error { return lti.SaveModal(w, ms) }

// LoadModalROM deserializes a stream written by SaveROM or SaveModalROM; the
// modal form is nil when the stream carries none.
func LoadModalROM(r io.Reader) (*BlockDiagROM, *ModalROM, error) { return lti.LoadROM(r) }

// SimulateModalROM runs a fixed-step transient on a modal ROM: modal blocks
// advance by exact per-mode exponentials (no implicit solves), fallback
// blocks by the configured implicit rule.
func SimulateModalROM(ms *ModalROM, opts TransientOptions) (*TransientResult, error) {
	return sim.SimulateModal(ms, opts)
}

// Stepper is a resumable fixed-step transient integrator: advance in chunks,
// change the drive waveform between advances, snapshot and restore the
// per-mode state — the engine behind pgserve's streaming /session endpoints.
type Stepper = sim.Stepper

// StepperOptions configures a Stepper.
type StepperOptions = sim.StepperOptions

// StepperState is a deep snapshot of a Stepper's integration state.
type StepperState = sim.StepperState

// NewStepper builds a resumable integrator over a modal ROM (non-modal
// blocks fall back to the implicit rule of opts.Method).
func NewStepper(ms *ModalROM, opts StepperOptions) (*Stepper, error) {
	return sim.NewStepper(ms, opts)
}

// NewImplicitStepper builds a resumable all-implicit integrator over a
// block-diagonal ROM.
func NewImplicitStepper(rom *BlockDiagROM, opts StepperOptions) (*Stepper, error) {
	return sim.NewImplicitStepper(rom, opts)
}

// SaveROM serializes a block-diagonal ROM for later reuse.
func SaveROM(w io.Writer, rom *BlockDiagROM) error { return lti.SaveBlockDiag(w, rom) }

// LoadROM deserializes a block-diagonal ROM saved by SaveROM.
func LoadROM(r io.Reader) (*BlockDiagROM, error) { return lti.LoadBlockDiag(r) }

// SimulateFull runs a fixed-step transient on the unreduced sparse model.
func SimulateFull(sys *SparseModel, opts TransientOptions) (*TransientResult, error) {
	return sim.SimulateSparse(sys, opts)
}

// SimulateROM runs a fixed-step transient on a block-diagonal ROM with
// optional per-block parallelism (opts.Workers).
func SimulateROM(rom *BlockDiagROM, opts TransientOptions) (*TransientResult, error) {
	return sim.SimulateBlockDiag(rom, opts)
}

// SimulateDenseROM runs a fixed-step transient on a dense descriptor ROM.
func SimulateDenseROM(rom *DenseROM, opts TransientOptions) (*TransientResult, error) {
	return sim.SimulateDense(rom, opts)
}

// CheckPassivity verifies stability and sampled passivity of a square
// (immittance) ROM, per Sec. III-D of the paper.
func CheckPassivity(rom *BlockDiagROM, opts PassivityCheckOptions) (*PassivityReport, error) {
	std, err := passivity.ToStandard(rom.ToDense())
	if err != nil {
		return nil, err
	}
	diag, err := passivity.Diagonalize(std)
	if err != nil {
		return nil, err
	}
	return passivity.Check(rom, diag.Poles, opts)
}

// MomentMatrix is a dense p×m real matrix holding one transfer-function
// moment M_k = L·((s0C-G)⁻¹C)^k·(s0C-G)⁻¹B.
type MomentMatrix = dense.Mat[float64]

// TransferMatrix is a dense p×m complex matrix holding H(s) at one
// frequency, as returned by System.Eval.
type TransferMatrix = dense.Mat[complex128]

// Moments returns the first count moment matrices of H(s) around s0 — the
// quantities BDSM and PRIMA match exactly.
func Moments(sys *SparseModel, s0 float64, count int) ([]*MomentMatrix, error) {
	return sys.Moments(s0, count)
}

// SolverBackend selects direct LU or iterative (memory-streaming) pencil
// solves inside the reduction algorithms.
type SolverBackend = krylov.Backend

// Solver backends.
const (
	BackendLU        = krylov.BackendLU
	BackendIterative = krylov.BackendIterative
	BackendCholesky  = krylov.BackendCholesky
	BackendAuto      = krylov.BackendAuto
)

// ReducePRIMAMultipoint runs PRIMA with rational multi-point projection,
// matching opts.Moments block moments at every expansion point.
func ReducePRIMAMultipoint(sys *SparseModel, points []float64, opts BaselineOptions) (*DenseROM, error) {
	return baseline.PRIMAMultipoint(sys, points, opts)
}
