package repro

import (
	"math"
	"testing"
)

// TestFacadeCoverage exercises the remaining facade surface: named-source
// helpers, multipoint PRIMA, adaptive simulation and benchmark listing.
func TestFacadeCoverage(t *testing.T) {
	if names := BenchmarkNames(); len(names) != 5 || names[0] != "ckt1" {
		t.Fatalf("BenchmarkNames = %v", names)
	}
	cfg, err := Benchmark("ckt1", 0.12)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, m, _ := sys.Dims()

	// Multipoint PRIMA through the facade.
	if _, err := ReducePRIMAMultipoint(sys, []float64{1e8, 1e10}, BaselineOptions{Moments: 2, MemoryBudget: -1}); err != nil {
		t.Fatal(err)
	}

	rom, err := ReduceBDSM(sys, BDSMOptions{Moments: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Per-port sources and PWL.
	pwl, err := NewPWL([]float64{0, 1e-10, 2e-10}, []float64{0, 1e-3, 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]Source, m)
	for i := range srcs {
		if i%2 == 0 {
			srcs[i] = pwl
		} else {
			srcs[i] = DC(0)
		}
	}
	opts := TransientOptions{Dt: 1e-11, T: 5e-10, Input: Sources(srcs)}
	rb, err := SimulateROM(rom, opts)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := SimulateDenseROM(rom.ToDense(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range rb.Y {
		for j := range rb.Y[k] {
			if math.Abs(rb.Y[k][j]-rd.Y[k][j]) > 1e-10+1e-8*math.Abs(rd.Y[k][j]) {
				t.Fatal("block vs dense facade transient mismatch")
			}
		}
	}

	// Adaptive runs through both facade entry points.
	aopts := AdaptiveOptions{T: 5e-10, Tol: 1e-5, Input: Sources(srcs)}
	ra, err := SimulateROMAdaptive(rom, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.T) < 2 {
		t.Fatal("adaptive run produced no steps")
	}
	if _, err := SimulateDenseROMAdaptive(rom.ToDense(), aopts); err != nil {
		t.Fatal(err)
	}
}
