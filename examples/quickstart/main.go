// Command quickstart is the smallest end-to-end tour of the library: build a
// scaled industrial-style power grid, reduce it with BDSM, verify moment
// matching and frequency-domain accuracy against the unreduced model, and
// compare the ROM's structure with a PRIMA ROM of the same order.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"repro"
)

func main() {
	// 1. A ckt1-class benchmark at quarter scale (~370 nodes, 12 ports).
	cfg, err := repro.Benchmark("ckt1", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.BuildGrid(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n, m, p := sys.Dims()
	fmt.Printf("power grid: %d states, %d ports, %d outputs\n", n, m, p)

	// 2. BDSM reduction matching l = 6 moments (Algorithm 1 of the paper).
	var stats repro.BDSMStats
	rom, err := repro.ReduceBDSM(sys, repro.BDSMOptions{Moments: 6, Stats: &stats})
	if err != nil {
		log.Fatal(err)
	}
	q, _, _ := rom.Dims()
	_, gnnz, _, _ := rom.NNZ()
	fmt.Printf("BDSM ROM: order %d (%d blocks), Gr density %.1f%%, built with %d pencil solves\n",
		q, len(rom.Blocks), 100*float64(gnnz)/float64(q*q), stats.PencilSolves)

	// 3. Accuracy check at three frequencies inside the matching band.
	for _, w := range []float64{1e7, 1e8, 1e9} {
		s := complex(0, w)
		hx, err := sys.Eval(s)
		if err != nil {
			log.Fatal(err)
		}
		hr, err := rom.Eval(s)
		if err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for i := range hx.Data {
			if e := cmplx.Abs(hx.Data[i] - hr.Data[i]); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("ω = %8.1e rad/s: max |H - Hr| = %.3e (scale %.3e)\n",
			w, maxErr, hx.MaxAbs())
	}

	// 4. The same-order PRIMA ROM is fully dense: that is the paper's
	// storage/simulation argument in one line.
	prima, err := repro.ReducePRIMA(sys, repro.BaselineOptions{Moments: 6})
	if err != nil {
		log.Fatal(err)
	}
	_, pg, _, _ := prima.NNZ()
	pq, _, _ := prima.Dims()
	fmt.Printf("PRIMA ROM: order %d, Gr density %.1f%% — same accuracy, %dx the nonzeros\n",
		pq, 100*float64(pg)/float64(pq*pq), pg/max(1, gnnz))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
