// Command packageresonance works the Sec. III-D application: grid plus
// package analyzed as one RLC model (Fig. 3), locating the package L–C
// anti-resonance in the port impedance from the BDSM ROM's poles, verifying
// ROM passivity before system-level use, and showing the ROM reproduces the
// resonant peak of the full model.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"repro"
)

func main() {
	// A grid with pronounced package inductance: fewer pads → stronger
	// resonance. Start from the ckt1 analogue and strengthen the package.
	cfg, err := repro.Benchmark("ckt1", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	cfg.PadL = 2e-9 // 2 nH bond-wire-class inductance
	cfg.PadR = 0.05
	cfg.Pads = 2
	built, err := repro.BuildGrid(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Loads draw current out of the grid, so the raw transfer is -Z(s);
	// switch to the impedance convention for resonance and passivity work.
	sys := repro.ImpedanceView(built)
	rom, err := repro.ReduceBDSM(sys, repro.BDSMOptions{Moments: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the self-impedance of port 0 around the expected resonance.
	exact, err := repro.ACSweep(sys, 0, 0, 1e8, 1e12, 121)
	if err != nil {
		log.Fatal(err)
	}
	reduced, err := repro.ACSweep(rom, 0, 0, 1e8, 1e12, 121)
	if err != nil {
		log.Fatal(err)
	}
	peakW, peakZ, peakErr := 0.0, 0.0, 0.0
	for k, pt := range exact {
		z := cmplx.Abs(pt.H)
		if z > peakZ {
			peakZ = z
			peakW = pt.Omega
			peakErr = cmplx.Abs(reduced[k].H-pt.H) / z
		}
	}
	fmt.Printf("package anti-resonance: |Z| peaks at ω = %.3e rad/s (%.2f GHz), |Z| = %.3f Ω\n",
		peakW, peakW/(2*math.Pi*1e9), peakZ)
	fmt.Printf("BDSM ROM error at the peak: %.3e (relative)\n", peakErr)

	// Passivity check before plugging the ROM into a system-level netlist.
	rep, err := repro.CheckPassivity(rom, repro.PassivityCheckOptions{Samples: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROM stable: %v, passive: %v (worst Popov eigenvalue %.3e at ω = %.3e)\n",
		rep.Stable, rep.Passive, rep.WorstEig, rep.WorstFrequency)
	if !rep.Passive {
		fmt.Println("note: weak non-passivity detected — the paper's Sec. III-D case;")
		fmt.Println("apply passivity enforcement before system-level co-simulation.")
	}

	// Predicted LC resonance for comparison: ω ≈ 1/sqrt(L_pkg/pads · C_total).
	perLayer := cfg.NX * cfg.NY
	cTotal := float64(perLayer*cfg.Layers) * cfg.NodeC
	lEff := cfg.PadL / float64(cfg.Pads)
	fmt.Printf("first-order LC estimate: ω ≈ %.3e rad/s (L/pads = %.2g H, ΣC = %.2g F)\n",
		1/math.Sqrt(lEff*cTotal), lEff, cTotal)
}
