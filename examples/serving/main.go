// Example serving demonstrates the pgserve workflow end to end: it starts
// the ROM service in-process, reduces a benchmark once via POST /reduce,
// then fires many concurrent AC-sweep requests at it — the paper's
// reduce-once / evaluate-many reusability argument, operationalized. The
// second wave of sweeps reuses cached pencil factorizations, and the final
// /healthz read shows the cache hit ratio.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

func main() {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("pgserve serving on %s\n\n", base)

	// Reduce once. Every sweep below reuses this block-diagonal ROM.
	t0 := time.Now()
	var info struct {
		ID     string `json:"id"`
		Nodes  int    `json:"nodes"`
		Ports  int    `json:"ports"`
		Order  int    `json:"order"`
		Blocks int    `json:"blocks"`
	}
	post(base+"/reduce", map[string]any{"benchmark": "ckt2", "scale": 0.2}, &info)
	fmt.Printf("reduced %d-node, %d-port grid -> order-%d ROM (%d blocks) in %v\n",
		info.Nodes, info.Ports, info.Order, info.Blocks, time.Since(t0).Round(time.Millisecond))

	// Two waves of concurrent sweeps on the same frequency grid. Wave 1
	// factors each frequency point once (across all requests — concurrent
	// requests at the same point coalesce); wave 2 is all cache hits.
	const clients = 16
	sweep := func(col int) {
		var out struct {
			Points []struct {
				Omega, Mag float64
			} `json:"points"`
		}
		post(base+"/sweep", map[string]any{
			"model": info.ID, "row": col % 3, "col": col,
			"wmin": 1e5, "wmax": 1e15, "points": 300,
		}, &out)
		if len(out.Points) != 300 {
			log.Fatalf("sweep returned %d points", len(out.Points))
		}
	}
	for wave := 1; wave <= 2; wave++ {
		t := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() { defer wg.Done(); sweep(c % info.Ports) }()
		}
		wg.Wait()
		fmt.Printf("wave %d: %d concurrent 300-point sweeps in %v\n",
			wave, clients, time.Since(t).Round(time.Microsecond))
	}

	var health struct {
		Cache struct {
			Entries   int   `json:"entries"`
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Evictions int64 `json:"evictions"`
		} `json:"cache"`
		Workers int `json:"workers"`
	}
	get(base+"/healthz", &health)
	c := health.Cache
	fmt.Printf("\nfactorization cache: %d entries, %d hits / %d misses (%.0f%% hit rate), %d evictions, %d workers\n",
		c.Entries, c.Hits, c.Misses,
		100*float64(c.Hits)/float64(c.Hits+c.Misses), c.Evictions, health.Workers)
}

func post(url string, body, out any) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, e["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("POST %s: decode: %v", url, err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: decode: %v", url, err)
	}
}
