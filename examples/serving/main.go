// Example serving demonstrates the pgserve workflow end to end, including
// the persistent ROM store: it starts the ROM service in-process with a
// store directory, reduces a benchmark once via POST /reduce (which also
// pre-factors the standard sweep grid), fires many concurrent AC-sweep
// requests at it, then simulates a process restart — a second server on the
// same store directory preloads the ROM from disk and serves immediately,
// with zero reductions performed. That is the paper's reduce-once /
// evaluate-many reusability argument operationalized across process
// lifetimes, not just within one.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "pgserve-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Process 1: cold start. The reduction is paid here, once. ----
	base1, stop1 := startServer(dir)
	fmt.Printf("cold server on %s (store %s)\n\n", base1, dir)

	t0 := time.Now()
	var info modelInfo
	post(base1+"/reduce", map[string]any{"benchmark": "ckt2", "scale": 0.2}, &info)
	fmt.Printf("reduced %d-node, %d-port grid -> order-%d ROM (%d blocks) in %v [source=%s]\n",
		info.Nodes, info.Ports, info.Order, info.Blocks, time.Since(t0).Round(time.Millisecond), info.Source)

	// Concurrent sweeps on the default grid: /reduce pre-factored exactly
	// these frequencies while the engine was idle, so even the first wave
	// is pure cache hits.
	runWaves(base1, info)
	printHealth(base1)
	stop1()

	// ---- Process 2: warm restart on the same store directory. ----
	fmt.Printf("\n--- restart: new process, same -store-dir ---\n\n")
	base2, stop2 := startServer(dir)
	defer stop2()

	t0 = time.Now()
	var warm modelInfo
	post(base2+"/reduce", map[string]any{"benchmark": "ckt2", "scale": 0.2}, &warm)
	fmt.Printf("same model served in %v [source=%s, cached=%v] — reduction skipped\n",
		time.Since(t0).Round(time.Microsecond), warm.Source, warm.Cached)
	runWaves(base2, warm)
	printHealth(base2)
}

type modelInfo struct {
	ID     string `json:"id"`
	Nodes  int    `json:"nodes"`
	Ports  int    `json:"ports"`
	Order  int    `json:"order"`
	Blocks int    `json:"blocks"`
	Source string `json:"source"`
	Cached bool   `json:"cached"`
}

// startServer boots an in-process pgserve on the given store directory,
// preloading whatever the store already holds (instant on an empty store).
func startServer(dir string) (base string, stop func()) {
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(serve.Config{Store: st})
	if n, err := srv.PreloadStore(); err != nil {
		log.Fatal(err)
	} else if n > 0 {
		fmt.Printf("preloaded %d model(s) from store, no reduction performed\n", n)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		srv.Close()
	}
}

// runWaves fires two waves of concurrent default-grid sweeps.
func runWaves(base string, info modelInfo) {
	const clients = 16
	sweep := func(col int) {
		var out struct {
			Points []struct {
				Omega, Mag float64
			} `json:"points"`
		}
		// No wmin/wmax/points: the standard (pre-warmed) grid.
		post(base+"/sweep", map[string]any{
			"model": info.ID, "row": col % 3, "col": col,
		}, &out)
		if len(out.Points) == 0 {
			log.Fatalf("sweep returned no points")
		}
	}
	for wave := 1; wave <= 2; wave++ {
		t := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() { defer wg.Done(); sweep(c % info.Ports) }()
		}
		wg.Wait()
		fmt.Printf("wave %d: %d concurrent default-grid sweeps in %v\n",
			wave, clients, time.Since(t).Round(time.Microsecond))
	}
}

func printHealth(base string) {
	// The subsystem counters live under /healthz's "stats" key.
	var health struct {
		Stats struct {
			Cache struct {
				Entries     int   `json:"entries"`
				Hits        int64 `json:"hits"`
				Misses      int64 `json:"misses"`
				Evictions   int64 `json:"evictions"`
				BudgetBytes int64 `json:"budget_bytes"`
				Bytes       int64 `json:"bytes"`
				DiskHits    int64 `json:"disk_hits"`
				ModalEvals  int64 `json:"modal_evals"`
				Factored    int64 `json:"factored_evals"`
			} `json:"cache"`
			Repo struct {
				Builds   int64 `json:"builds"`
				DiskHits int64 `json:"disk_hits"`
			} `json:"repo"`
			Workers int `json:"workers"`
		} `json:"stats"`
	}
	get(base+"/healthz", &health)
	c := health.Stats.Cache
	hitRate := 0.0
	if c.Hits+c.Misses > 0 {
		hitRate = 100 * float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	fmt.Printf("evals: %d modal / %d factored; cache: %d entries (%.1f/%d MiB), %d hits / %d misses (%.0f%% hit rate); repo: %d reductions, %d disk hits\n",
		c.ModalEvals, c.Factored,
		c.Entries, float64(c.Bytes)/(1<<20), c.BudgetBytes>>20,
		c.Hits, c.Misses, hitRate,
		health.Stats.Repo.Builds, health.Stats.Repo.DiskHits)
}

func post(url string, body, out any) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, e["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("POST %s: decode: %v", url, err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: decode: %v", url, err)
	}
}
