// Example sessions demonstrates streaming transient sessions: a long-lived
// client opens one session on a reduced model, streams integration rows in
// chunks, switches the drive waveform mid-session (the integrator state
// carries over — nothing restarts from t = 0), and compares the per-poll
// cost against a client that re-runs /transient from scratch on every poll.
// The session's per-mode state is a few complex numbers per block, so a
// million-step session advance costs the same as the first — the paper's
// tiny-ROM-state scalability argument applied to long-lived clients.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/serve"
)

func main() {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var model struct {
		ID    string `json:"id"`
		Order int    `json:"order"`
		Nodes int    `json:"nodes"`
	}
	post(base+"/reduce", map[string]any{"benchmark": "ckt1", "scale": 0.2}, &model)
	fmt.Printf("model %s: %d nodes -> order %d\n\n", model.ID, model.Nodes, model.Order)

	// ---- One long-lived session, drive switched mid-stream. ----
	const dt = 1e-10
	var sess struct {
		Session string `json:"session"`
	}
	post(base+"/session", map[string]any{"model": model.ID, "dt": dt}, &sess)
	fmt.Printf("session %s (dt = %g)\n", sess.Session, dt)

	step := map[string]any{"kind": "step", "amplitude": 1e-3}
	rows := advance(base, sess.Session, 2000, step)
	fmt.Printf("phase 1: %4d rows under a step drive, last |y0| = %.3e at t = %.2eps\n",
		len(rows), rows[len(rows)-1].Y[0], rows[len(rows)-1].T*1e12)

	// Switch the waveform mid-session: a sine ripple on the same DC level.
	// The state carries over — the response continues from where it was.
	sine := map[string]any{"kind": "sine", "offset": 1e-3, "amplitude": 5e-4, "freq": 2e9, "delay": rows[len(rows)-1].T}
	rows2 := advance(base, sess.Session, 2000, sine)
	fmt.Printf("phase 2: %4d rows after switching to a sine ripple mid-session\n", len(rows2))

	var state struct {
		Step int     `json:"step"`
		Time float64 `json:"time"`
		Rows int64   `json:"rows"`
	}
	get(base+"/session/"+sess.Session, &state)
	fmt.Printf("session state: step %d, t = %.2eps, %d rows streamed total\n\n",
		state.Step, state.Time*1e12, state.Rows)

	// ---- Per-poll latency: session advance vs recompute-from-zero. ----
	fmt.Println("per-poll latency, 2000 new steps per poll (session) vs full recompute (/transient):")
	var poll struct {
		Session string `json:"session"`
	}
	post(base+"/session", map[string]any{"model": model.ID, "dt": dt}, &poll)
	elapsed := 0
	for i := 1; i <= 4; i++ {
		t0 := time.Now()
		advance(base, poll.Session, 2000, step)
		sessionMS := time.Since(t0)
		elapsed += 2000

		t0 = time.Now()
		var tr struct {
			T []float64 `json:"t"`
		}
		post(base+"/transient", map[string]any{
			"model": model.ID, "dt": dt, "t": dt * float64(elapsed), "input": step,
		}, &tr)
		recomputeMS := time.Since(t0)
		fmt.Printf("  poll %d (t = %5d steps): session %8v   recompute %8v\n",
			i, elapsed, sessionMS.Round(time.Microsecond), recomputeMS.Round(time.Microsecond))
	}

	// ---- Hygiene: close what we opened; the janitor would anyway. ----
	del(base + "/session/" + sess.Session)
	del(base + "/session/" + poll.Session)
	var health struct {
		Stats struct {
			Sessions serve.SessionStats `json:"sessions"`
		} `json:"stats"`
	}
	get(base+"/healthz", &health)
	ss := health.Stats.Sessions
	fmt.Printf("\nhealthz sessions: %d active, %d created, %d deleted, %d steps served\n",
		ss.Active, ss.Created, ss.Deleted, ss.StepsTotal)
}

type row struct {
	T float64   `json:"t"`
	Y []float64 `json:"y"`
}

// advance streams one NDJSON advance and returns its rows.
func advance(base, id string, steps int, input map[string]any) []row {
	buf, _ := json.Marshal(map[string]any{"steps": steps, "input": input})
	resp, err := http.Post(base+"/session/"+id+"/advance", "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("advance: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("advance: status %d", resp.StatusCode)
	}
	var rows []row
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		// The server ends a truncated stream (session evicted mid-advance,
		// integrator failure) with a final {"error": ...} line.
		var line struct {
			row
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatalf("advance row: %v", err)
		}
		if line.Error != "" {
			log.Fatalf("advance truncated: %s", line.Error)
		}
		rows = append(rows, line.row)
	}
	return rows
}

func post(url string, body, out any) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, e["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("POST %s: decode: %v", url, err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: decode: %v", url, err)
	}
}

func del(url string) {
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("DELETE %s: %v", url, err)
	}
	resp.Body.Close()
}
