// Example parametric demonstrates Δ-scale serving: the persistent ROM store
// as a parametric model library. Three anchor reductions of ckt1 are stored
// at neighboring Scale points; a client then sweeps a continuum of scales
// between them, and every intermediate model is assembled by pole-matched
// modal interpolation — POST /interp — in microseconds, with zero further
// reductions (asserted against /healthz build counters). One scale is also
// requested with an impossibly tight error budget to show the self-checked
// fallback: the server reduces that one for real rather than serve an
// out-of-budget interpolant.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// The anchors sit inside one geometric plateau of ckt1 (identical grid
// topology, continuously scaled electricals) — the regime where Δ-scale
// interpolation is well-posed. See internal/param.
var anchors = []float64{0.236, 0.241, 0.246}

func main() {
	dir, err := os.MkdirTemp("", "pgserve-parametric-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	base, stop := startServer(dir)
	defer stop()
	fmt.Printf("serving on %s (store %s)\n\n", base, dir)

	// ---- Anchor reductions: the only real reductions in this run. ----
	for _, s := range anchors {
		t0 := time.Now()
		var info modelInfo
		post(base+"/reduce", map[string]any{"benchmark": "ckt1", "scale": s}, &info)
		fmt.Printf("anchor %-14s scale %-5g  order %d  reduced in %v\n",
			info.ID, s, info.Order, time.Since(t0).Round(time.Millisecond))
	}

	// ---- Δ-scale continuum: interpolated, never reduced. ----
	fmt.Printf("\nscale continuum between the anchors (POST /interp):\n")
	fmt.Printf("%-8s %-10s %-12s %-12s %s\n", "scale", "source", "latency", "check err", "anchors")
	for scale := 0.2372; scale < 0.2455; scale += 0.0012 {
		t0 := time.Now()
		var info interpInfo
		post(base+"/interp", map[string]any{"benchmark": "ckt1", "scale": scale}, &info)
		lat := time.Since(t0).Round(10 * time.Microsecond)
		fmt.Printf("%-8.4f %-10s %-12v %-12.2e %v\n",
			scale, info.Source, lat, info.Interp.CheckErr, info.Interp.Scales)

		// Each interpolant is a first-class model: sweep it by id.
		var sweep struct {
			Points []struct{ Omega, Mag float64 } `json:"points"`
		}
		post(base+"/sweep", map[string]any{"model": info.ID, "points": 40}, &sweep)
		if len(sweep.Points) != 40 {
			log.Fatalf("sweep on %s returned %d points", info.ID, len(sweep.Points))
		}
	}

	// /eval can resolve benchmark+scale directly — no /interp round trip.
	var eval struct {
		Points []struct {
			Omega float64 `json:"omega"`
		} `json:"points"`
	}
	post(base+"/eval", map[string]any{"benchmark": "ckt1", "scale": 0.2399,
		"omegas": []float64{1e8, 1e9, 1e10}}, &eval)
	fmt.Printf("\n/eval at unstored scale 0.2399: %d transfer matrices returned\n", len(eval.Points))

	// ---- Fallback: a budget no interpolant can meet forces a reduction. ----
	t0 := time.Now()
	var strict interpInfo
	post(base+"/interp", map[string]any{"benchmark": "ckt1", "scale": 0.2441, "tol": 1e-9}, &strict)
	fmt.Printf("tol=1e-9 at scale 0.2441: source=%s in %v (self-check failed the budget, reduced for real)\n",
		strict.Source, time.Since(t0).Round(time.Millisecond))

	// ---- The ledger: anchors + 1 fallback reductions, nothing else. ----
	var health struct {
		Stats struct {
			Repo struct {
				Builds          int64 `json:"builds"`
				InterpServed    int64 `json:"interp_served"`
				InterpFallbacks int64 `json:"interp_fallbacks"`
				InterpModels    int   `json:"interp_models"`
			} `json:"repo"`
		} `json:"stats"`
	}
	get(base+"/healthz", &health)
	r := health.Stats.Repo
	fmt.Printf("\nreductions: %d (3 anchors + %d fallback); interpolation served %d Δ-scale requests, %d interpolants resident\n",
		r.Builds, r.InterpFallbacks, r.InterpServed, r.InterpModels)
	if want := int64(len(anchors)) + r.InterpFallbacks; r.Builds != want {
		log.Fatalf("expected %d reductions, measured %d — interpolation leaked a build", want, r.Builds)
	}
}

type modelInfo struct {
	ID     string `json:"id"`
	Order  int    `json:"order"`
	Source string `json:"source"`
}

type interpInfo struct {
	ID     string `json:"id"`
	Source string `json:"source"`
	Interp struct {
		Scales   [2]float64 `json:"scales"`
		CheckErr float64    `json:"check_err"`
	} `json:"interp"`
}

func startServer(dir string) (base string, stop func()) {
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(serve.Config{Store: st})
	if _, err := srv.PreloadStore(); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		srv.Close()
	}
}

func post(url string, body, out any) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, e["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("POST %s: decode: %v", url, err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: decode: %v", url, err)
	}
}
