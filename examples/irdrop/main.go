// Command irdrop demonstrates the ROM-reuse workflow the paper motivates:
// transient IR-drop analysis of a power grid under several different load
// patterns using one BDSM reduced-order model. The ROM is built once, saved
// to disk, reloaded, and simulated under three distinct excitations; every
// run is validated against the unreduced model. An EKS ROM — rebuilt-per-
// pattern by design — is shown failing on a pattern it was not built for.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	cfg, err := repro.Benchmark("ckt2", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.BuildGrid(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n, m, _ := sys.Dims()
	fmt.Printf("grid: %d states, %d load ports\n", n, m)

	// Build the BDSM ROM once and round-trip it through serialization —
	// the "reusable artifact" of the paper.
	rom, err := repro.ReduceBDSM(sys, repro.BDSMOptions{Moments: 6})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.SaveROM(&buf, rom); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BDSM ROM saved: %d bytes\n", buf.Len())
	rom, err = repro.LoadROM(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Three different switching-activity patterns.
	patterns := map[string]repro.Input{
		"uniform clock": repro.UniformInput(repro.Pulse{
			Low: 0, High: 2e-3, Delay: 1e-10, Rise: 5e-11, Width: 4e-10, Fall: 5e-11, Period: 1e-9}),
		"hot corner": func(t float64, u []float64) {
			p := repro.Pulse{Low: 0, High: 5e-3, Delay: 2e-10, Rise: 1e-10, Width: 1e-9, Fall: 1e-10, Period: 2e-9}
			for i := range u {
				if i < len(u)/3 {
					u[i] = p.At(t)
				} else {
					u[i] = 0
				}
			}
		},
		"staggered banks": func(t float64, u []float64) {
			for i := range u {
				p := repro.Pulse{Low: 0, High: 1e-3, Delay: float64(i%4) * 2.5e-10,
					Rise: 5e-11, Width: 3e-10, Fall: 5e-11, Period: 1e-9}
				u[i] = p.At(t)
			}
		},
	}

	opts := repro.TransientOptions{
		Method: repro.Trapezoidal,
		Dt:     5e-12,
		T:      4e-9,
	}
	for name, input := range patterns {
		o := opts
		o.Input = input
		full, err := repro.SimulateFull(sys, o)
		if err != nil {
			log.Fatal(err)
		}
		o.Workers = 2
		red, err := repro.SimulateROM(rom, o)
		if err != nil {
			log.Fatal(err)
		}
		node, metrics, err := full.WorstCase(0.02)
		if err != nil {
			log.Fatal(err)
		}
		worstErr := 0.0
		for k := range full.Y {
			for j := range full.Y[k] {
				if e := math.Abs(full.Y[k][j] - red.Y[k][j]); e > worstErr {
					worstErr = e
				}
			}
		}
		fmt.Printf("%-16s worst IR drop %.3f mV at port %d (t=%.2fns, RMS %.3f mV) | ROM error %.2e mV — same ROM, no rebuild\n",
			name+":", metrics.Peak*1e3, node, metrics.PeakTime*1e9, metrics.RMS*1e3, worstErr*1e3)
	}

	// Contrast: an EKS ROM built for the all-ports-switching pattern,
	// evaluated on a pattern it was not built for (half the banks switching
	// up while the other half switch down — nearly orthogonal to the baked
	// all-ones excitation).
	eks, err := repro.ReduceEKS(sys, nil, repro.BaselineOptions{Moments: 8})
	if err != nil {
		log.Fatal(err)
	}
	s := complex(0, 1e9)
	hx, err := sys.Eval(s)
	if err != nil {
		log.Fatal(err)
	}
	he, err := eks.Eval(s)
	if err != nil {
		log.Fatal(err)
	}
	unseen := make([]complex128, m)
	for i := range unseen {
		if i%2 == 0 {
			unseen[i] = 2e-3
		} else {
			unseen[i] = -2e-3
		}
	}
	yx, ye := hx.MulVec(unseen), he.MulVec(unseen)
	num, den := 0.0, 0.0
	for i := range yx {
		d := yx[i] - ye[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(yx[i])*real(yx[i]) + imag(yx[i])*imag(yx[i])
	}
	fmt.Printf("EKS ROM on unseen pattern: %.0f%% response error — must be rebuilt per pattern\n",
		100*math.Sqrt(num/den))
}
