// Command streaming demonstrates the scalability story behind Table I's
// last column: BDSM reduces one splitted system at a time, so its working
// memory does not grow with the port count, while PRIMA's dense basis does —
// until it no longer fits (the Table II "break down" rows). It also shows
// the solver backends: sparse LU, Cholesky on an RC-only grid (SPD pencil),
// and the factorization-free iterative mode the paper uses for its largest
// circuits.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// An RC-only grid: the pencil (s0·C - G) is symmetric positive definite.
	cfg, err := repro.Benchmark("ckt2", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	cfg.RCOnly = true
	sys, err := repro.BuildGrid(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n, m, _ := sys.Dims()
	fmt.Printf("RC-only grid: %d states, %d ports (SPD pencil)\n", n, m)

	// Backend comparison on the same reduction.
	for _, backend := range []struct {
		name string
		b    repro.SolverBackend
	}{
		{"sparse LU", repro.BackendLU},
		{"Cholesky", repro.BackendCholesky},
		{"auto", repro.BackendAuto},
	} {
		var stats repro.BDSMStats
		t0 := time.Now()
		_, err := repro.ReduceBDSM(sys, repro.BDSMOptions{
			Moments: 6, Backend: backend.b, Stats: &stats,
		})
		if err != nil {
			log.Fatalf("%s: %v", backend.name, err)
		}
		fmt.Printf("%-10s reduce %8v, factor fill %8d nnz, %d solves\n",
			backend.name, time.Since(t0).Round(time.Millisecond),
			stats.FactorNNZ, stats.PencilSolves)
	}

	// Memory scaling: BDSM's streaming peak is flat in the port count;
	// PRIMA's dense basis grows linearly and eventually exceeds the budget.
	fmt.Println("\nworking-set growth with port count (budget 24 MiB):")
	budget := int64(24) << 20
	for _, ports := range []int{8, 32, 128} {
		c := cfg
		c.Ports = ports
		s, err := repro.BuildGrid(c)
		if err != nil {
			log.Fatal(err)
		}
		var stats repro.BDSMStats
		if _, err := repro.ReduceBDSM(s, repro.BDSMOptions{Moments: 6, Workers: 2, Stats: &stats}); err != nil {
			log.Fatal(err)
		}
		_, perr := repro.ReducePRIMA(s, repro.BaselineOptions{Moments: 6, MemoryBudget: budget})
		primaState := "ok"
		if errors.Is(perr, repro.ErrBudgetExceeded) {
			primaState = "BREAK DOWN (dense basis over budget)"
		} else if perr != nil {
			log.Fatal(perr)
		}
		fmt.Printf("m = %4d: BDSM peak basis %6.2f MiB | PRIMA %s\n",
			ports, float64(stats.PeakBasisBytes)/(1<<20), primaState)
	}
}
