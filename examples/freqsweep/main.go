// Command freqsweep reproduces the Fig. 5 experiment interactively: it
// sweeps one transfer entry of a ckt1-class grid across 10⁵–10¹⁵ rad/s for
// the exact model and all four reduction schemes, printing a CSV that plots
// both panels of the figure, plus a per-scheme error summary.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"repro"
)

func main() {
	scale := flag.Float64("scale", 0.25, "benchmark scale factor (0,1]")
	points := flag.Int("points", 41, "frequency samples")
	row := flag.Int("row", 0, "output port (0-based)")
	col := flag.Int("col", 1, "input port (0-based)")
	flag.Parse()

	cfg, err := repro.Benchmark("ckt1", *scale)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.BuildGrid(cfg)
	if err != nil {
		log.Fatal(err)
	}
	l := 6

	bdsm, err := repro.ReduceBDSM(sys, repro.BDSMOptions{Moments: l})
	if err != nil {
		log.Fatal(err)
	}
	prima, err := repro.ReducePRIMA(sys, repro.BaselineOptions{Moments: l, MemoryBudget: -1})
	if err != nil {
		log.Fatal(err)
	}
	svdmor, err := repro.ReduceSVDMOR(sys, 0.6, repro.BaselineOptions{Moments: l, MemoryBudget: -1})
	if err != nil {
		log.Fatal(err)
	}
	eks, err := repro.ReduceEKS(sys, nil, repro.BaselineOptions{Moments: l})
	if err != nil {
		log.Fatal(err)
	}

	const wMin, wMax = 1e5, 1e15
	exact, err := repro.ACSweep(sys, *row, *col, wMin, wMax, *points)
	if err != nil {
		log.Fatal(err)
	}
	schemes := []struct {
		name string
		sys  repro.System
	}{
		{"BDSM", bdsm}, {"PRIMA", prima}, {"SVDMOR", svdmor},
		{fmt.Sprintf("EKS-%d", l), eks},
	}
	sweeps := make([][]repro.ACPoint, len(schemes))
	for i, sc := range schemes {
		sweeps[i], err = repro.ACSweep(sc.sys, *row, *col, wMin, wMax, *points)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
	}

	fmt.Printf("# H(%d,%d) sweep, ckt1 analogue at scale %.2f, l = %d\n", *row+1, *col+1, *scale, l)
	fmt.Print("omega,exact")
	for _, sc := range schemes {
		fmt.Printf(",%s,err_%s", sc.name, sc.name)
	}
	fmt.Println()
	for k, pt := range exact {
		fmt.Printf("%.6e,%.6e", pt.Omega, cmplx.Abs(pt.H))
		for i := range schemes {
			den := math.Max(cmplx.Abs(pt.H), 1e-300)
			fmt.Printf(",%.6e,%.6e", cmplx.Abs(sweeps[i][k].H),
				cmplx.Abs(sweeps[i][k].H-pt.H)/den)
		}
		fmt.Println()
	}

	fmt.Println("\n# max relative error below 1e10 rad/s (paper: BDSM/PRIMA < 1e-6):")
	for i, sc := range schemes {
		maxErr := 0.0
		for k, pt := range exact {
			if pt.Omega > 1e10 {
				break
			}
			den := math.Max(cmplx.Abs(pt.H), 1e-300)
			if e := cmplx.Abs(sweeps[i][k].H-pt.H) / den; e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("# %-8s %.3e\n", sc.name, maxErr)
	}
}
