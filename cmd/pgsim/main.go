// Command pgsim simulates a saved block-diagonal ROM (from pgreduce) in the
// time or frequency domain:
//
//	pgsim -rom rom.bin -tran -dt 5e-12 -T 4e-9 -pulse 1m        transient CSV
//	pgsim -rom rom.bin -ac -row 0 -col 1 -points 41             AC sweep CSV
//
// Transient excitation applies the same pulse to every port (use the library
// API for per-port waveforms); output is CSV on stdout.
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"

	"repro"
)

func main() {
	romPath := flag.String("rom", "rom.bin", "ROM path from pgreduce")
	tran := flag.Bool("tran", false, "run a transient simulation")
	ac := flag.Bool("ac", false, "run an AC sweep")
	dt := flag.Float64("dt", 5e-12, "transient step (s)")
	tEnd := flag.Float64("T", 4e-9, "transient end time (s)")
	amp := flag.Float64("pulse", 1e-3, "pulse amplitude (A) applied to all ports")
	workers := flag.Int("workers", 0, "parallel block workers")
	row := flag.Int("row", 0, "AC output port (0-based)")
	col := flag.Int("col", 0, "AC input port (0-based)")
	wMin := flag.Float64("wmin", 1e5, "AC sweep start (rad/s)")
	wMax := flag.Float64("wmax", 1e15, "AC sweep end (rad/s)")
	points := flag.Int("points", 41, "AC sweep points")
	flag.Parse()

	f, err := os.Open(*romPath)
	if err != nil {
		fatal(err)
	}
	rom, err := repro.LoadROM(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	q, m, p := rom.Dims()
	fmt.Fprintf(os.Stderr, "pgsim: loaded order-%d ROM, %d inputs, %d outputs\n", q, m, p)

	switch {
	case *tran:
		res, err := repro.SimulateROM(rom, repro.TransientOptions{
			Method:  repro.Trapezoidal,
			Dt:      *dt,
			T:       *tEnd,
			Workers: *workers,
			Input: repro.UniformInput(repro.Pulse{
				Low: 0, High: *amp, Delay: *tEnd / 20, Rise: *tEnd / 40,
				Width: *tEnd / 4, Fall: *tEnd / 40, Period: *tEnd,
			}),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print("t")
		for j := 0; j < p; j++ {
			fmt.Printf(",y%d", j)
		}
		fmt.Println()
		for k := range res.T {
			fmt.Printf("%.6e", res.T[k])
			for _, v := range res.Y[k] {
				fmt.Printf(",%.6e", v)
			}
			fmt.Println()
		}
	case *ac:
		pts, err := repro.ACSweep(rom, *row, *col, *wMin, *wMax, *points)
		if err != nil {
			fatal(err)
		}
		fmt.Println("omega,mag,re,im")
		for _, pt := range pts {
			fmt.Printf("%.6e,%.6e,%.6e,%.6e\n", pt.Omega, cmplx.Abs(pt.H), real(pt.H), imag(pt.H))
		}
	default:
		fmt.Fprintln(os.Stderr, "pgsim: need -tran or -ac")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgsim:", err)
	os.Exit(1)
}
