// Command pgrouter runs the fault-tolerant router tier in front of a fleet of
// pgserve replicas sharing one store directory.
//
// Every model routes to a primary replica by consistent hashing on its id, so
// each replica's ROM repository and factorization cache stay hot for its
// share of the fleet's models. An active prober watches each replica's
// /healthz and feeds a per-replica circuit breaker; requests that fail on a
// transport error, a 502/503/504, or a truncated body retry on the next
// replica in the ring with capped exponential backoff and jitter. Responses
// are buffered and relayed complete-or-not-at-all: a client never sees a
// partial body from a replica that died mid-stream.
//
// Idempotent reads (/eval, /sweep, /interp) can additionally hedge (-hedge):
// when the primary has not answered within the fleet's observed p95 read
// latency, a second copy of the request races on the next replica and the
// first complete answer wins. /reduce is single-flighted at the router: a
// thundering herd asking for the same cold model triggers exactly one
// upstream reduction fleet-wide, with every caller sharing the one answer.
//
// Streaming transient sessions are sticky: the router remembers which replica
// owns each session and, when that replica dies, resumes the session on
// another replica from its persisted snapshot — pinned to exactly the step
// the client last observed (run replicas with -session-snapshot-every 1) —
// and replays the lost advance so clients never see the failure. When no
// healthy replica can take a request, the router sheds it with 429 and a
// Retry-After header instead of queueing.
//
// GET /metrics serves the router's own pgrouter_* metrics; GET /healthz
// answers 200 while at least one replica is usable and 503 (with per-replica
// detail) when none is.
//
//	pgrouter -addr :8000 \
//	  -replicas http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	  -hedge -log-format json
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	addr := flag.String("addr", ":8000", "listen address")
	replicas := flag.String("replicas", "", "comma-separated pgserve base URLs, e.g. http://host1:8080,http://host2:8080 (required)")
	vnodes := flag.Int("vnodes", 0, fmt.Sprintf("virtual nodes per replica on the consistent-hash ring (0 = default %d)", router.DefaultVNodes))
	probeInterval := flag.Duration("probe-interval", 0, fmt.Sprintf("active /healthz probe cadence per replica (0 = default %v, negative = disable probing)", router.DefaultProbeInterval))
	probeTimeout := flag.Duration("probe-timeout", 0, fmt.Sprintf("per-probe timeout (0 = default %v)", router.DefaultProbeTimeout))
	retryBackoff := flag.Duration("retry-backoff", 0, fmt.Sprintf("base backoff before retrying on the next replica; grows exponentially with full jitter (0 = default %v)", router.DefaultRetryBackoff))
	retryBackoffMax := flag.Duration("retry-backoff-max", 0, fmt.Sprintf("backoff growth cap (0 = default %v)", router.DefaultRetryBackoffMax))
	hedge := flag.Bool("hedge", false, "race a second copy of slow idempotent reads (/eval, /sweep, /interp) on the next replica after the observed p95 read latency")
	hedgeMin := flag.Duration("hedge-min", 0, fmt.Sprintf("floor on the hedge delay so cold-start latency noise does not double traffic (0 = default %v)", router.DefaultHedgeMinDelay))
	hedgeMax := flag.Duration("hedge-max", 0, fmt.Sprintf("ceiling on the hedge delay (0 = default %v)", router.DefaultHedgeMaxDelay))
	failThreshold := flag.Int("breaker-failures", 0, fmt.Sprintf("consecutive failures that trip a replica's circuit breaker (0 = default %d)", router.DefaultFailThreshold))
	openFor := flag.Duration("breaker-open", 0, fmt.Sprintf("initial open interval before a trial request; doubles per re-trip (0 = default %v)", router.DefaultOpenFor))
	openForMax := flag.Duration("breaker-open-max", 0, fmt.Sprintf("open interval growth cap (0 = default %v)", router.DefaultOpenForMax))
	probation := flag.Int("breaker-probation", 0, fmt.Sprintf("consecutive half-open successes that close the breaker (0 = default %d)", router.DefaultProbation))
	shedRetryAfter := flag.Duration("shed-retry-after", 0, fmt.Sprintf("Retry-After hint on shed (429) responses (0 = default %v)", router.DefaultShedRetryAfter))
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "request body size cap in bytes; oversized bodies get 413 (0 = default 1 MiB)")
	dialTimeout := flag.Duration("dial-timeout", 0, fmt.Sprintf("upstream connect timeout (0 = default %v)", router.DefaultDialTimeout))
	headerTimeout := flag.Duration("response-header-timeout", 0, fmt.Sprintf("time an upstream gets to start answering before the attempt fails over (0 = default %v)", router.DefaultHeaderTimeout))
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time a client gets to send its request headers before the connection is dropped (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgrouter: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, r)
		}
	}
	if len(reps) == 0 {
		fatal("-replicas is required: a comma-separated list of pgserve base URLs")
	}

	rt, err := router.New(router.Config{
		Replicas: reps,
		VNodes:   *vnodes,
		Breaker: router.BreakerConfig{
			FailThreshold: *failThreshold,
			OpenFor:       *openFor,
			OpenForMax:    *openForMax,
			Probation:     *probation,
		},
		ProbeInterval:         *probeInterval,
		ProbeTimeout:          *probeTimeout,
		RetryBackoff:          *retryBackoff,
		RetryBackoffMax:       *retryBackoffMax,
		Hedge:                 *hedge,
		HedgeMinDelay:         *hedgeMin,
		HedgeMaxDelay:         *hedgeMax,
		ShedRetryAfter:        *shedRetryAfter,
		MaxBodyBytes:          *maxBodyBytes,
		DialTimeout:           *dialTimeout,
		ResponseHeaderTimeout: *headerTimeout,
		Logger:                logger,
	})
	if err != nil {
		fatal("building router", "err", err)
	}
	defer rt.Close()

	// WriteTimeout stays unset for the same reason as pgserve: relayed
	// /session advance streams and NDJSON sweeps are legitimately long-lived.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("pgrouter listening", "addr", *addr, "replicas", len(reps),
		"hedge", *hedge)

	select {
	case err := <-errc:
		fatal("listen", "err", err)
	case <-ctx.Done():
	}
	logger.Info("pgrouter shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}
