// Command pggen emits a synthetic power-grid benchmark as a SPICE netlist,
// so the same instances the library reduces can be cross-validated in any
// external circuit simulator:
//
//	pggen -grid ckt1 -scale 0.25            # netlist on stdout
//	pggen -grid ckt3 -scale 0.1 -rconly     # RC-only variant
//	pggen -grid ckt2 -stats                 # just the element counts
//
// With -multiscale it instead generates the transmission+distribution
// ladder instances used by `pgbench -exp scale`: a purely resistive
// backbone feeding RC subgrids, sized to roughly -nodes total states:
//
//	pggen -multiscale -nodes 100000 -stats  # shape of the 10⁵-node rung
//	pggen -multiscale -nodes 10000          # netlist on stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/grid"
)

func main() {
	name := flag.String("grid", "ckt1", "benchmark name (ckt1..ckt5)")
	scale := flag.Float64("scale", 0.25, "scale factor (0,1]")
	rcOnly := flag.Bool("rconly", false, "omit package inductance (SPD pencil)")
	multiscale := flag.Bool("multiscale", false, "generate a multiscale transmission+distribution instance instead of a ckt benchmark")
	nodes := flag.Int("nodes", 100000, "approximate total node count for -multiscale")
	stats := flag.Bool("stats", false, "print element counts instead of the netlist")
	flag.Parse()

	if *multiscale {
		cfg, err := grid.MultiscaleBenchmark(*nodes)
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Printf("%s: backbone ring of %d static nodes (chords every %d), %d subgrids of %d×%d, %d ports\n",
				cfg.Name, cfg.TNodes, cfg.TChord, cfg.Grids, cfg.GX, cfg.GY, cfg.NumPorts())
			fmt.Printf("MNA states: %d\n", cfg.NumNodes())
			return
		}
		nl, err := cfg.Netlist()
		if err != nil {
			fatal(err)
		}
		if err := circuit.WriteNetlist(os.Stdout, nl); err != nil {
			fatal(err)
		}
		return
	}

	cfg, err := grid.Benchmark(*name, *scale)
	if err != nil {
		fatal(err)
	}
	cfg.RCOnly = *rcOnly
	nl, err := cfg.Netlist()
	if err != nil {
		fatal(err)
	}
	if *stats {
		s := nl.Stats()
		fmt.Printf("%s scale=%.2f: %d nodes, %d R, %d C, %d L, %d I sources (ports)\n",
			*name, *scale, s.Nodes, s.Resistors, s.Capacitors, s.Inductors, s.CurrentSources)
		fmt.Printf("MNA states: %d\n", cfg.NumNodes())
		return
	}
	if err := circuit.WriteNetlist(os.Stdout, nl); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pggen:", err)
	os.Exit(1)
}
