// Command pgbench regenerates the paper's tables and figures on the
// synthetic benchmark suite:
//
//	pgbench -exp table1              measured Table I scheme comparison
//	pgbench -exp table2 -scale 0.25  Table II CPU times on ckt1..ckt5
//	pgbench -exp fig4                Fig. 4 ROM structure + ASCII spy plots
//	pgbench -exp fig5 -points 61     Fig. 5 accuracy sweep (CSV)
//	pgbench -exp perf                evaluation-path micro-benchmarks
//	                                 (writes machine-readable BENCH_modal.json)
//	pgbench -exp interp              Δ-scale interpolation vs direct reduction
//	                                 (writes machine-readable BENCH_interp.json)
//	pgbench -exp session             streaming-session advances vs /transient
//	                                 recompute (writes BENCH_session.json)
//	pgbench -exp obs                 metrics-recording overhead on the hot
//	                                 paths (writes BENCH_obs.json)
//	pgbench -exp batch               fused multi-tenant evaluation vs
//	                                 per-request dispatch (writes
//	                                 BENCH_batch.json)
//	pgbench -exp fleet               router-tier throughput scaling and
//	                                 flapping-replica tail latency (writes
//	                                 BENCH_fleet.json)
//	pgbench -exp scale -maxn 100000  sparse-first reduction time vs n on the
//	                                 multiscale ladder (writes
//	                                 BENCH_scale.json; not part of -exp all)
//	pgbench -exp all                 everything above
//
// At -scale 1 the instances match the paper's node/port counts (ckt5 is a
// 1.7M-node build; expect a long run). The -budget flag emulates the
// paper's 4 GiB workstation and triggers the PRIMA/SVDMOR breakdowns.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/grid"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|fig4|fig5|ablation|perf|interp|session|obs|batch|fleet|all")
	scale := flag.Float64("scale", 0.25, "benchmark scale factor (0,1]; 1 = paper-size grids")
	points := flag.Int("points", 61, "frequency samples for fig5")
	budgetGiB := flag.Float64("budget", 4, "dense-basis memory budget in GiB (Table II breakdown emulation)")
	ckts := flag.String("ckts", "", "comma-separated subset for table2 (default all five)")
	workers := flag.Int("workers", 0, "BDSM workers (0 = GOMAXPROCS)")
	benchJSON := flag.String("benchjson", "", "output path for the perf/interp/session/obs/batch/fleet/scale experiments' machine-readable record (defaults: BENCH_modal.json when -exp perf, BENCH_interp.json when -exp interp, BENCH_session.json when -exp session, BENCH_obs.json when -exp obs, BENCH_batch.json when -exp batch, BENCH_fleet.json when -exp fleet, BENCH_scale.json when -exp scale; unset otherwise so 'pgbench -exp all' has no file side effects)")
	maxN := flag.Int("maxn", 100000, "top rung of the -exp scale ladder in grid nodes")
	flag.Parse()

	cfg := bench.Config{
		Scale:        *scale,
		SweepPoints:  *points,
		MemoryBudget: int64(*budgetGiB * float64(1<<30)),
		Workers:      *workers,
	}
	var list []string
	if *ckts != "" {
		list = strings.Split(*ckts, ",")
	}

	run := func(name string, f func() error) {
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	if want("table1") {
		any = true
		run("Table I", func() error {
			res, err := bench.TableI(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if want("table2") {
		any = true
		run("Table II", func() error {
			res, err := bench.TableII(cfg, list)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if want("fig4") {
		any = true
		run("Fig. 4", func() error {
			res, err := bench.Fig4(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if want("fig5") {
		any = true
		run("Fig. 5", func() error {
			res, err := bench.Fig5(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if want("perf") {
		any = true
		jsonPath := *benchJSON
		if jsonPath == "" && *exp == "perf" {
			jsonPath = "BENCH_modal.json"
		}
		run("Perf: evaluation paths", func() error {
			res, err := bench.Perf(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if jsonPath != "" {
				if err := res.WriteJSON(jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", jsonPath)
			}
			return nil
		})
	}
	if want("interp") {
		any = true
		jsonPath := *benchJSON
		if jsonPath == "" && *exp == "interp" {
			jsonPath = "BENCH_interp.json"
		}
		run("Interp: Δ-scale serving", func() error {
			res, err := bench.Interp(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if jsonPath != "" {
				if err := res.WriteJSON(jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", jsonPath)
			}
			return nil
		})
	}
	if want("session") {
		any = true
		jsonPath := *benchJSON
		if jsonPath == "" && *exp == "session" {
			jsonPath = "BENCH_session.json"
		}
		run("Session: streaming transient advances vs recompute", func() error {
			res, err := bench.Session(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if jsonPath != "" {
				if err := res.WriteJSON(jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", jsonPath)
			}
			return nil
		})
	}
	if want("obs") {
		any = true
		jsonPath := *benchJSON
		if jsonPath == "" && *exp == "obs" {
			jsonPath = "BENCH_obs.json"
		}
		run("Obs: metrics-recording overhead", func() error {
			res, err := bench.Obs(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if jsonPath != "" {
				if err := res.WriteJSON(jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", jsonPath)
			}
			return nil
		})
	}
	if want("batch") {
		any = true
		jsonPath := *benchJSON
		if jsonPath == "" && *exp == "batch" {
			jsonPath = "BENCH_batch.json"
		}
		run("Batch: fused multi-tenant evaluation", func() error {
			res, err := bench.Batch(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if jsonPath != "" {
				if err := res.WriteJSON(jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", jsonPath)
			}
			return nil
		})
	}
	if want("fleet") {
		any = true
		jsonPath := *benchJSON
		if jsonPath == "" && *exp == "fleet" {
			jsonPath = "BENCH_fleet.json"
		}
		run("Fleet: router-tier scaling and fault absorption", func() error {
			res, err := bench.Fleet(cfg)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if jsonPath != "" {
				if err := res.WriteJSON(jsonPath); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", jsonPath)
			}
			return nil
		})
	}
	if want("ablation") {
		any = true
		run("Ablation: orthonormalization cost", func() error {
			res, err := bench.AblationOrthoCost(cfg, nil)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		})
	}
	if *exp == "scale" {
		// The scale ladder is opt-in only (not part of -exp all): its top
		// rung assembles and reduces a -maxn-node multiscale grid.
		any = true
		jsonPath := *benchJSON
		if jsonPath == "" {
			jsonPath = "BENCH_scale.json"
		}
		run("Scale: sparse-first reduction vs n", func() error {
			res, err := bench.Scale(cfg, *maxN)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			if err := res.WriteJSON(jsonPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", jsonPath)
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "pgbench: unknown experiment %q (want table1|table2|fig4|fig5|ablation|perf|interp|session|obs|batch|fleet|scale|all)\n", *exp)
		fmt.Fprintf(os.Stderr, "benchmarks: %s\n", strings.Join(grid.Names(), ", "))
		os.Exit(2)
	}
}
