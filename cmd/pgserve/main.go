// Command pgserve runs the ROM-serving HTTP daemon: a long-lived process
// that reduces power-grid benchmarks once and serves transfer-function
// evaluations, AC sweeps, and transient runs against the cached
// block-diagonal ROMs to any number of concurrent clients.
//
// With -store-dir, every reduction is persisted to a content-addressed ROM
// store and read back on the next start: a warm restart registers its models
// from disk in milliseconds instead of re-reducing them.
//
// With -interp (on by default), the stored models double as a parametric ROM
// library: POST /interp — or benchmark+scale on /eval and /sweep — serves an
// unstored Scale by interpolating the modal forms of the two stored anchors
// bracketing it, falling back to a real reduction when the self-checked
// error exceeds -interp-tol.
//
// POST /session opens a long-lived streaming transient session: integrator
// state is held server-side (a few complex numbers per mode), advances
// stream NDJSON rows as they are computed, and the drive waveform can change
// mid-session without restarting from t=0. Sessions are bounded
// (-max-sessions) and evicted on -session-ttl / -session-idle. The HTTP
// server sets -read-header-timeout and -idle-timeout (WriteTimeout stays
// unset so streams live as long as their clients; dead clients cancel via
// request context within one chunk), and request bodies are capped at
// -max-body-bytes.
//
// Observability: GET /metrics serves Prometheus text-format counters and
// latency histograms for every subsystem; GET /healthz answers 503 while the
// store preload runs and once a SIGTERM drain begins, so a health-aware
// router pulls the replica; every request carries an X-Request-Id
// (propagated from the client or generated) echoed on the response, in error
// bodies, and on each structured log line (-log-format, -log-level,
// -slow-request); and -debug-addr starts a separate ops listener exposing
// net/http/pprof.
//
//	pgserve -addr :8080 -store-dir /var/lib/pgserve -preload ckt1@0.25,ckt2@0.1 \
//	  -log-format json -debug-addr localhost:6060
//
//	curl -X POST localhost:8080/reduce -d '{"benchmark":"ckt1","scale":0.25}'
//	curl -X POST localhost:8080/sweep \
//	  -d '{"model":"ckt1-0.25-l6-s01e09","row":0,"col":0,"wmin":1e5,"wmax":1e15,"points":200}'
//	curl localhost:8080/metrics
//	go tool pprof http://localhost:6060/debug/pprof/profile
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = NumCPU)")
	cacheMB := flag.Int64("cache-mb", 0, "factorization cache budget in MiB (0 = default 256)")
	maxModels := flag.Int("max-models", 0, "model repository bound (0 = default)")
	storeDir := flag.String("store-dir", "", "persistent ROM store directory (empty = in-memory only; reductions are written through and warm restarts skip reducing)")
	preload := flag.String("preload", "", "comma-separated models to reduce at startup, each name@scale (e.g. ckt1@0.25)")
	noModal := flag.Bool("no-modal", false, "disable the modal fast path; every evaluation goes through the factorization cache")
	noWard := flag.Bool("no-ward", false, "disable the exact Ward/Schur pre-reduction stage on model builds")
	interp := flag.Bool("interp", true, "serve unstored Scales by interpolating between stored modal ROM anchors (POST /interp, benchmark+scale on /eval and /sweep); disabled = always reduce")
	interpTol := flag.Float64("interp-tol", 0, fmt.Sprintf("Δ-scale error budget: leave-one-out check error above which interpolation falls back to a real reduction (0 = default %g)", serve.DefaultInterpTol))
	maxSessions := flag.Int("max-sessions", 0, fmt.Sprintf("bound on concurrent transient sessions (0 = default %d)", serve.DefaultMaxSessions))
	sessionTTL := flag.Duration("session-ttl", 0, fmt.Sprintf("hard lifetime bound of a transient session (0 = default %v)", serve.DefaultSessionTTL))
	sessionIdle := flag.Duration("session-idle", 0, fmt.Sprintf("idle timeout after which an untouched session is evicted (0 = default %v)", serve.DefaultSessionIdle))
	snapshotEvery := flag.Int("session-snapshot-every", 0, "persist each session's integrator state to the store every N completed advances so another replica can resume it (0 = disabled; 1 = snapshot after every advance, exact failover; requires -store-dir)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, fmt.Sprintf("request body size cap in bytes; oversized bodies get 413 (0 = default %d)", serve.DefaultMaxBodyBytes))
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time a client gets to send its request headers before the connection is dropped (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	slowRequest := flag.Duration("slow-request", time.Second, "requests slower than this log at Warn (0 = never)")
	debugAddr := flag.String("debug-addr", "", "ops listener address exposing /debug/pprof (empty = disabled; bind to localhost)")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgserve: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	cfg := serve.Config{Workers: *workers, CacheBytes: *cacheMB << 20, MaxModels: *maxModels,
		DisableModal: *noModal, DisableWard: *noWard, DisableInterp: !*interp, InterpTol: *interpTol,
		MaxSessions: *maxSessions, SessionTTL: *sessionTTL, SessionIdle: *sessionIdle,
		MaxBodyBytes: *maxBodyBytes, Logger: logger, SlowRequest: *slowRequest,
		SnapshotEvery: *snapshotEvery}
	if *snapshotEvery > 0 && *storeDir == "" {
		fatal("-session-snapshot-every requires -store-dir")
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal("opening store", "dir", *storeDir, "err", err)
		}
		cfg.Store = st
	}
	srv := serve.New(cfg)
	defer srv.Close()

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr)
	}

	// WriteTimeout is deliberately unset: /sweep and /transient NDJSON
	// responses and /session/{id}/advance streams are legitimately long-lived
	// (a session may stream for minutes), and a server-wide write deadline
	// would sever them mid-stream. Dead clients are handled per request
	// instead — every handler threads r.Context(), so a disconnect cancels
	// the evaluation within one chunk. ReadHeaderTimeout bounds slowloris
	// header dribbling and IdleTimeout reclaims idle keep-alive connections.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen immediately but answer /healthz with 503 until the preloads
	// finish: a router probing the replica sees "starting", not connection
	// refused, and knows not to route real traffic yet.
	srv.SetNotReady("store preload in progress")
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	cacheMiB := *cacheMB
	if cacheMiB <= 0 {
		cacheMiB = serve.DefaultCacheBytes >> 20
	}
	logger.Info("pgserve listening", "addr", *addr, "workers", *workers,
		"cache_mib", cacheMiB, "store", *storeDir)

	go func() {
		if cfg.Store != nil {
			t0 := time.Now()
			n, err := srv.PreloadStore()
			if err != nil {
				fatal("preloading store", "dir", *storeDir, "err", err)
			}
			st := cfg.Store.Stats()
			logger.Info("store preloaded", "dir", *storeDir, "models", n,
				"duration", time.Since(t0).Round(time.Millisecond).String(),
				"entries", st.Entries, "quarantined", st.Quarantined)
		}
		for _, spec := range strings.Split(*preload, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			key, err := parsePreload(spec)
			if err != nil {
				fatal("bad -preload spec", "spec", spec, "err", err)
			}
			t0 := time.Now()
			m, outcome, err := srv.Repo().Get(key)
			if err != nil {
				fatal("preloading model", "spec", spec, "err", err)
			}
			logger.Info("model preloaded", "model", m.ID, "source", outcome.String(),
				"nodes", m.Nodes, "order", m.Order, "blocks", m.Blocks,
				"duration", time.Since(t0).Round(time.Millisecond).String())
		}
		srv.SetReady()
		logger.Info("pgserve ready")
	}()

	select {
	case err := <-errc:
		fatal("listen", "err", err)
	case <-ctx.Done():
	}
	// Drain: flip /healthz to 503 first so the router stops sending work,
	// then shut the listener down gracefully, then persist every live
	// session's integrator state so a surviving replica can resume them.
	srv.SetNotReadyFor("draining: shutdown in progress", serve.RetryAfterDrain)
	logger.Info("pgserve shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if cfg.Store != nil {
		if n := srv.SnapshotSessions(); n > 0 {
			logger.Info("drained session snapshots", "sessions", n)
		}
	}
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}

// serveDebug runs the ops listener: pprof only, on its own mux and port, so
// profiling endpoints are never exposed on the serving address.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	logger.Info("debug listener (pprof)", "addr", addr)
	if err := ds.ListenAndServe(); err != nil {
		logger.Error("debug listener", "err", err)
	}
}

// parsePreload parses "name@scale" (scale optional, default 0.25).
func parsePreload(spec string) (serve.ModelKey, error) {
	key := serve.ModelKey{Scale: 0.25}
	name, scaleStr, found := strings.Cut(spec, "@")
	key.Benchmark = name
	if found {
		s, err := strconv.ParseFloat(scaleStr, 64)
		if err != nil {
			return key, fmt.Errorf("bad scale %q: %w", scaleStr, err)
		}
		key.Scale = s
	}
	return key, nil
}
