// Command pgserve runs the ROM-serving HTTP daemon: a long-lived process
// that reduces power-grid benchmarks once and serves transfer-function
// evaluations, AC sweeps, and transient runs against the cached
// block-diagonal ROMs to any number of concurrent clients.
//
// With -store-dir, every reduction is persisted to a content-addressed ROM
// store and read back on the next start: a warm restart registers its models
// from disk in milliseconds instead of re-reducing them.
//
// With -interp (on by default), the stored models double as a parametric ROM
// library: POST /interp — or benchmark+scale on /eval and /sweep — serves an
// unstored Scale by interpolating the modal forms of the two stored anchors
// bracketing it, falling back to a real reduction when the self-checked
// error exceeds -interp-tol.
//
// POST /session opens a long-lived streaming transient session: integrator
// state is held server-side (a few complex numbers per mode), advances
// stream NDJSON rows as they are computed, and the drive waveform can change
// mid-session without restarting from t=0. Sessions are bounded
// (-max-sessions) and evicted on -session-ttl / -session-idle. The HTTP
// server sets -read-header-timeout and -idle-timeout (WriteTimeout stays
// unset so streams live as long as their clients; dead clients cancel via
// request context within one chunk), and request bodies are capped at
// -max-body-bytes.
//
//	pgserve -addr :8080 -store-dir /var/lib/pgserve -preload ckt1@0.25,ckt2@0.1
//
//	curl -X POST localhost:8080/reduce -d '{"benchmark":"ckt1","scale":0.25}'
//	curl -X POST localhost:8080/sweep \
//	  -d '{"model":"ckt1-0.25-l6-s01e09","row":0,"col":0,"wmin":1e5,"wmax":1e15,"points":200}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = NumCPU)")
	cacheMB := flag.Int64("cache-mb", 0, "factorization cache budget in MiB (0 = default 256)")
	maxModels := flag.Int("max-models", 0, "model repository bound (0 = default)")
	storeDir := flag.String("store-dir", "", "persistent ROM store directory (empty = in-memory only; reductions are written through and warm restarts skip reducing)")
	preload := flag.String("preload", "", "comma-separated models to reduce at startup, each name@scale (e.g. ckt1@0.25)")
	noModal := flag.Bool("no-modal", false, "disable the modal fast path; every evaluation goes through the factorization cache")
	interp := flag.Bool("interp", true, "serve unstored Scales by interpolating between stored modal ROM anchors (POST /interp, benchmark+scale on /eval and /sweep); disabled = always reduce")
	interpTol := flag.Float64("interp-tol", 0, fmt.Sprintf("Δ-scale error budget: leave-one-out check error above which interpolation falls back to a real reduction (0 = default %g)", serve.DefaultInterpTol))
	maxSessions := flag.Int("max-sessions", 0, fmt.Sprintf("bound on concurrent transient sessions (0 = default %d)", serve.DefaultMaxSessions))
	sessionTTL := flag.Duration("session-ttl", 0, fmt.Sprintf("hard lifetime bound of a transient session (0 = default %v)", serve.DefaultSessionTTL))
	sessionIdle := flag.Duration("session-idle", 0, fmt.Sprintf("idle timeout after which an untouched session is evicted (0 = default %v)", serve.DefaultSessionIdle))
	maxBodyBytes := flag.Int64("max-body-bytes", 0, fmt.Sprintf("request body size cap in bytes; oversized bodies get 413 (0 = default %d)", serve.DefaultMaxBodyBytes))
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time a client gets to send its request headers before the connection is dropped (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	flag.Parse()

	cfg := serve.Config{Workers: *workers, CacheBytes: *cacheMB << 20, MaxModels: *maxModels,
		DisableModal: *noModal, DisableInterp: !*interp, InterpTol: *interpTol,
		MaxSessions: *maxSessions, SessionTTL: *sessionTTL, SessionIdle: *sessionIdle,
		MaxBodyBytes: *maxBodyBytes}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("pgserve: %v", err)
		}
		cfg.Store = st
	}
	srv := serve.New(cfg)
	defer srv.Close()

	if cfg.Store != nil {
		t0 := time.Now()
		n, err := srv.PreloadStore()
		if err != nil {
			log.Fatalf("pgserve: preloading store %s: %v", *storeDir, err)
		}
		st := cfg.Store.Stats()
		log.Printf("store %s: %d model(s) preloaded (no reduction) in %v; %d entries, %d quarantined",
			*storeDir, n, time.Since(t0).Round(time.Millisecond), st.Entries, st.Quarantined)
	}

	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		key, err := parsePreload(spec)
		if err != nil {
			log.Fatalf("pgserve: -preload %q: %v", spec, err)
		}
		t0 := time.Now()
		m, outcome, err := srv.Repo().Get(key)
		if err != nil {
			log.Fatalf("pgserve: preloading %q: %v", spec, err)
		}
		log.Printf("preloaded %s (%s): %d nodes -> order %d (%d blocks) in %v",
			m.ID, outcome, m.Nodes, m.Order, m.Blocks, time.Since(t0).Round(time.Millisecond))
	}

	// WriteTimeout is deliberately unset: /sweep and /transient NDJSON
	// responses and /session/{id}/advance streams are legitimately long-lived
	// (a session may stream for minutes), and a server-wide write deadline
	// would sever them mid-stream. Dead clients are handled per request
	// instead — every handler threads r.Context(), so a disconnect cancels
	// the evaluation within one chunk. ReadHeaderTimeout bounds slowloris
	// header dribbling and IdleTimeout reclaims idle keep-alive connections.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	cacheMiB := *cacheMB
	if cacheMiB <= 0 {
		cacheMiB = serve.DefaultCacheBytes >> 20
	}
	log.Printf("pgserve listening on %s (workers=%d, cache=%dMiB, store=%q)",
		*addr, *workers, cacheMiB, *storeDir)

	select {
	case err := <-errc:
		log.Fatalf("pgserve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("pgserve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("pgserve: shutdown: %v", err)
	}
}

// parsePreload parses "name@scale" (scale optional, default 0.25).
func parsePreload(spec string) (serve.ModelKey, error) {
	key := serve.ModelKey{Scale: 0.25}
	name, scaleStr, found := strings.Cut(spec, "@")
	key.Benchmark = name
	if found {
		s, err := strconv.ParseFloat(scaleStr, 64)
		if err != nil {
			return key, fmt.Errorf("bad scale %q: %w", scaleStr, err)
		}
		key.Scale = s
	}
	return key, nil
}
