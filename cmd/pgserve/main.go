// Command pgserve runs the ROM-serving HTTP daemon: a long-lived process
// that reduces power-grid benchmarks once and serves transfer-function
// evaluations, AC sweeps, and transient runs against the cached
// block-diagonal ROMs to any number of concurrent clients.
//
//	pgserve -addr :8080 -preload ckt1@0.25,ckt2@0.1
//
//	curl -X POST localhost:8080/reduce -d '{"benchmark":"ckt1","scale":0.25}'
//	curl -X POST localhost:8080/sweep \
//	  -d '{"model":"ckt1-0.25-l6-s01e09","row":0,"col":0,"wmin":1e5,"wmax":1e15,"points":200}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = NumCPU)")
	cacheCap := flag.Int("cache", 4096, "factorization cache capacity (entries)")
	maxModels := flag.Int("max-models", 0, "model repository bound (0 = default)")
	preload := flag.String("preload", "", "comma-separated models to reduce at startup, each name@scale (e.g. ckt1@0.25)")
	flag.Parse()

	srv := serve.New(serve.Config{Workers: *workers, CacheCapacity: *cacheCap, MaxModels: *maxModels})
	defer srv.Close()

	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		key, err := parsePreload(spec)
		if err != nil {
			log.Fatalf("pgserve: -preload %q: %v", spec, err)
		}
		t0 := time.Now()
		m, _, err := srv.Repo().Get(key)
		if err != nil {
			log.Fatalf("pgserve: preloading %q: %v", spec, err)
		}
		log.Printf("preloaded %s: %d nodes -> order %d (%d blocks) in %v",
			m.ID, m.Nodes, m.Order, m.Blocks, time.Since(t0).Round(time.Millisecond))
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("pgserve listening on %s (workers=%d, cache=%d)", *addr, *workers, *cacheCap)

	select {
	case err := <-errc:
		log.Fatalf("pgserve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("pgserve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("pgserve: shutdown: %v", err)
	}
}

// parsePreload parses "name@scale" (scale optional, default 0.25).
func parsePreload(spec string) (serve.ModelKey, error) {
	key := serve.ModelKey{Scale: 0.25}
	name, scaleStr, found := strings.Cut(spec, "@")
	key.Benchmark = name
	if found {
		s, err := strconv.ParseFloat(scaleStr, 64)
		if err != nil {
			return key, fmt.Errorf("bad scale %q: %w", scaleStr, err)
		}
		key.Scale = s
	}
	return key, nil
}
