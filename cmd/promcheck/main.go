// Command promcheck validates a Prometheus text-format scrape on stdin: it
// must parse under the strict obs parser (HELP/TYPE pairing, label quoting,
// monotone cumulative histogram buckets), and every metric family named in
// -require must be present. Exit status 0 means a well-formed scrape with all
// required families; anything else is a CI failure.
//
//	curl -fsS localhost:8080/metrics | promcheck \
//	  -require pgserve_http_requests_total,pgserve_repo_builds_total
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must appear in the scrape")
	min := flag.Int("min-series", 1, "minimum number of samples the scrape must contain")
	flag.Parse()

	sc, err := obs.ParseText(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: malformed scrape: %v\n", err)
		os.Exit(1)
	}
	if len(sc.Samples) < *min {
		fmt.Fprintf(os.Stderr, "promcheck: scrape has %d samples, want at least %d\n", len(sc.Samples), *min)
		os.Exit(1)
	}

	missing := 0
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		// A histogram family appears as name_bucket/_sum/_count series; accept
		// the family name if any of its series (or the name itself) is present.
		if sc.Has(name) || sc.Has(name+"_bucket") || sc.Has(name+"_sum") || sc.Has(name+"_count") {
			continue
		}
		fmt.Fprintf(os.Stderr, "promcheck: required metric %q missing from scrape\n", name)
		missing++
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d samples, %d families typed)\n", len(sc.Samples), len(sc.Types))
}
