// Command promcheck validates a Prometheus text-format scrape on stdin: it
// must parse under the strict obs parser (HELP/TYPE pairing, label quoting,
// monotone cumulative histogram buckets), and every metric family named via
// -require / -require-file must be present. Exit status 0 means a
// well-formed scrape with all required families; anything else is a CI
// failure.
//
//	curl -fsS localhost:8080/metrics | promcheck \
//	  -require-file .github/promcheck-pgserve.require
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must appear in the scrape")
	requireFile := flag.String("require-file", "", "file of required family names, one per line (# comments and blanks ignored); unioned with -require")
	min := flag.Int("min-series", 1, "minimum number of samples the scrape must contain")
	flag.Parse()

	names := splitComma(*require)
	if *requireFile != "" {
		fileNames, err := readRequireFile(*requireFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(1)
		}
		names = append(names, fileNames...)
	}

	sc, err := obs.ParseText(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: malformed scrape: %v\n", err)
		os.Exit(1)
	}
	if len(sc.Samples) < *min {
		fmt.Fprintf(os.Stderr, "promcheck: scrape has %d samples, want at least %d\n", len(sc.Samples), *min)
		os.Exit(1)
	}

	missing := 0
	for _, name := range names {
		// A histogram family appears as name_bucket/_sum/_count series; accept
		// the family name if any of its series (or the name itself) is present.
		if sc.Has(name) || sc.Has(name+"_bucket") || sc.Has(name+"_sum") || sc.Has(name+"_count") {
			continue
		}
		fmt.Fprintf(os.Stderr, "promcheck: required metric %q missing from scrape\n", name)
		missing++
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d samples, %d families typed)\n", len(sc.Samples), len(sc.Types))
}

func splitComma(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// readRequireFile reads one family name per line; blank lines and
// #-comments are skipped. The same format metrichygiene keeps in sync with
// the registered metrics.
func readRequireFile(path string) ([]string, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, raw := range strings.Split(string(content), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}
