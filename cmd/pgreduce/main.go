// Command pgreduce builds a reduced-order model from a SPICE netlist or a
// synthetic benchmark and writes it to disk for later reuse:
//
//	pgreduce -netlist grid.sp -l 6 -out rom.bin
//	pgreduce -grid ckt2 -scale 0.25 -l 10 -out rom.bin
//
// The output is a block-diagonal BDSM ROM (gob-encoded) that pgsim can
// simulate under arbitrary excitations — the paper's reusability workflow.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	netlist := flag.String("netlist", "", "SPICE netlist input path")
	gridName := flag.String("grid", "", "synthetic benchmark name (ckt1..ckt5)")
	scale := flag.Float64("scale", 0.25, "benchmark scale factor for -grid")
	l := flag.Int("l", 6, "matched moments per port")
	s0 := flag.Float64("s0", repro.DefaultS0, "Krylov expansion point (rad/s)")
	out := flag.String("out", "rom.bin", "output ROM path")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	iterative := flag.Bool("iterative", false, "use the memory-streaming iterative solver instead of sparse LU")
	wardOn := flag.Bool("ward", true, "run the exact Ward/Schur pre-reduction before the Krylov projection")
	flag.Parse()

	var (
		sys *repro.SparseModel
		err error
	)
	switch {
	case *netlist != "":
		f, ferr := os.Open(*netlist)
		if ferr != nil {
			fatal(ferr)
		}
		nl, perr := repro.ParseNetlist(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		sys, err = repro.FromNetlist(nl)
	case *gridName != "":
		cfg, cerr := repro.Benchmark(*gridName, *scale)
		if cerr != nil {
			fatal(cerr)
		}
		sys, err = repro.BuildGrid(cfg)
	default:
		fmt.Fprintln(os.Stderr, "pgreduce: need -netlist or -grid")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	opts := repro.BDSMOptions{S0: *s0, Moments: *l, Workers: *workers,
		Backend: repro.BackendAuto, WardReduce: *wardOn}
	if *iterative {
		opts.Backend = repro.BackendIterative
	}
	var stats repro.BDSMStats
	opts.Stats = &stats
	rom, err := repro.ReduceBDSM(sys, opts)
	if err != nil {
		fatal(err)
	}
	n, m, p := sys.Dims()
	q, _, _ := rom.Dims()
	fmt.Printf("reduced %d states / %d ports / %d outputs -> order-%d block-diagonal ROM (%d blocks)\n",
		n, m, p, q, len(rom.Blocks))
	if *wardOn {
		fmt.Printf("ward pre-reduction: eliminated %d static states (%d boundary, backend %s)\n",
			stats.Ward.External, stats.Ward.Boundary, stats.Ward.Backend)
	}
	fmt.Printf("pencil solves: %d, ortho dot products: %d, factor fill: %d nnz\n",
		stats.PencilSolves, stats.Ortho.DotProducts, stats.FactorNNZ)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := repro.SaveROM(f, rom); err != nil {
		fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgreduce:", err)
	os.Exit(1)
}
