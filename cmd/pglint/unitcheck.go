package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// vetConfig is the unit-checker protocol configuration cmd/go writes for
// each package when pglint runs as -vettool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs the analyzers over one package under cmd/go's vettool
// protocol: type information comes from the export data the build already
// produced, so each package is checked at per-package fidelity (module-wide
// cross-checks run in standalone mode, which CI gates on).
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pglint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pglint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "pglint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)

	var sfiles []string
	for _, f := range cfg.NonGoFiles {
		if strings.HasSuffix(f, ".s") {
			sfiles = append(sfiles, f)
		}
	}
	spec := analysis.PkgSpec{
		Path:     cfg.ImportPath,
		Dir:      cfg.Dir,
		Files:    cfg.GoFiles,
		SFiles:   sfiles,
		InModule: true,
	}
	m, err := analysis.TypeCheck(fset, []analysis.PkgSpec{spec}, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "pglint:", err)
		return 1
	}
	// Per-package mode has no module root: metrichygiene's doc cross-checks
	// are standalone-only and disable themselves when RootDir is empty.
	diags, err := analysis.Run(m, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pglint:", err)
		return 1
	}
	for _, d := range diags {
		posn := d.Position(fset)
		fmt.Fprintf(os.Stderr, "%s: %s\n", relPosition(posn, cfg.Dir), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func relPosition(posn token.Position, dir string) string {
	name := posn.Filename
	if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	if posn.Column > 0 {
		return fmt.Sprintf("%s:%d:%d", name, posn.Line, posn.Column)
	}
	return fmt.Sprintf("%s:%d", name, posn.Line)
}
