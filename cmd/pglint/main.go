// Command pglint is the repo's static-analysis suite: five repo-specific
// analyzers that machine-enforce the invariants the serving stack's
// correctness and speed rest on.
//
//	noalloc       //pgmor:noalloc functions must not contain allocating
//	              constructs, transitively through same-module callees
//	atomicfield   fields accessed via sync/atomic are never accessed plainly
//	ctxflow       context.Background()/TODO()/WithoutCancel() in request-path
//	              packages require a //pgmor:detach <reason> annotation
//	asmpolicy     amd64 assembly: FP opcode allowlist (never FMA), VZEROUPPER
//	              before RET, TEXT sizes cross-checked against Go stubs
//	metrichygiene metric names are prefixed snake_case, globally unique, and
//	              synchronized with the README tables and CI require lists
//
// Usage:
//
//	go run ./cmd/pglint ./...          # standalone, whole-module fidelity
//	go vet -vettool=$(which pglint) ./...  # per-package fidelity
//
// Standalone mode loads and type-checks the entire module in one process, so
// cross-package checks (transitive allocation, global metric uniqueness) see
// everything. Vettool mode runs under cmd/go's unit-checker protocol with
// per-package export data; it applies the same rules at package granularity.
// CI gates on standalone mode.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/asmpolicy"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/metrichygiene"
	"repro/internal/analysis/noalloc"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		noalloc.Analyzer,
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		asmpolicy.Analyzer,
		metrichygiene.Analyzer,
	}
}

func main() {
	// The -V and -flags handshakes come from cmd/go's vettool protocol; they
	// must answer before normal flag parsing.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		// cmd/go caches vet results keyed on this line; it must end in
		// "buildID=<hex>". Hash the executable so edits invalidate the cache.
		id := "unknown"
		if exe, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(exe); err == nil {
				sum := sha256.Sum256(data)
				id = fmt.Sprintf("%x", sum[:16])
			}
		}
		fmt.Printf("pglint version devel buildID=%s\n", id)
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pglint [packages]\n       pglint <unit>.cfg  (vettool mode)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pglint:", err)
		return 2
	}
	m, err := analysis.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pglint:", err)
		return 2
	}
	diags, err := analysis.Run(m, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pglint:", err)
		return 2
	}
	for _, d := range diags {
		posn := d.Position(m.Fset)
		name := posn.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		if posn.Column > 0 {
			fmt.Printf("%s:%d:%d: %s\n", name, posn.Line, posn.Column, d.Message)
		} else {
			fmt.Printf("%s:%d: %s\n", name, posn.Line, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
